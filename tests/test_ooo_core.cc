/**
 * @file
 * Unit and property tests for the out-of-order core.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "cpu/ooo_core.hh"
#include "mem/hierarchy.hh"
#include "workload/vector_trace.hh"

using namespace hetsim;
using namespace hetsim::cpu;
using workload::VectorTrace;

namespace
{

MicroOp
alu(int16_t dst, int16_t src1 = -1, int16_t src2 = -1,
    uint64_t pc = 0x1000)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.dst = dst;
    op.src1 = src1;
    op.src2 = src2;
    op.pc = pc;
    return op;
}

MicroOp
load(int16_t dst, uint64_t addr, int16_t addr_reg = -1,
     uint8_t size = 8)
{
    MicroOp op;
    op.cls = OpClass::Load;
    op.dst = dst;
    op.src1 = addr_reg;
    op.addr = addr;
    op.accessSize = size;
    op.pc = 0x1000;
    return op;
}

MicroOp
store(uint64_t addr, int16_t data_reg = -1, uint8_t size = 8)
{
    MicroOp op;
    op.cls = OpClass::Store;
    op.src2 = data_reg;
    op.addr = addr;
    op.accessSize = size;
    op.pc = 0x1000;
    return op;
}

mem::HierarchyParams
memParams()
{
    mem::HierarchyParams p;
    p.numCores = 1;
    return p; // prefetchers enabled: sequential code stays IL1-hot
}

/** Run one core until finished; returns the cycle count. */
uint64_t
runCore(OooCore &core, uint64_t limit = 1000000)
{
    mem::Cycle now = 0;
    while (!core.finished()) {
        core.tick(now);
        ++now;
        EXPECT_LT(now, limit) << "core did not finish";
        if (now >= limit)
            break;
    }
    return now;
}

struct CoreRig
{
    explicit CoreRig(std::vector<MicroOp> ops,
                     CoreParams params = CoreParams{},
                     mem::HierarchyParams mem_params = memParams())
        : trace(std::move(ops)), hier(mem_params),
          core(params, 0, &hier, &trace)
    {
    }

    VectorTrace trace;
    mem::MemHierarchy hier;
    OooCore core;
};

} // namespace

TEST(OooCore, CommitsEveryOpExactlyOnce)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 100; ++i)
        ops.push_back(alu(1 + (i % 30), 0, -1, 0x1000 + 4 * i));
    CoreRig rig(ops);
    runCore(rig.core);
    EXPECT_EQ(rig.core.committedOps(), 100u);
    EXPECT_TRUE(rig.core.finished());
}

TEST(OooCore, IndependentOpsReachIssueWidth)
{
    // 400 independent single-cycle ops on a 4-wide machine should
    // sustain close to 4 IPC.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 400; ++i)
        ops.push_back(alu(1 + (i % 30), -1, -1, 0x1000 + 4 * i));
    CoreRig rig(ops);
    const uint64_t cycles = runCore(rig.core);
    // ~100 issue cycles + pipeline fill + one cold IL1 miss.
    EXPECT_LT(cycles, 300u);
}

TEST(OooCore, DependentChainBoundByAluLatency)
{
    // A strict chain of N dependent 1-cycle ALU ops takes >= N cycles.
    std::vector<MicroOp> ops;
    ops.push_back(alu(1, -1));
    for (int i = 0; i < 199; ++i)
        ops.push_back(alu(1 + ((i + 1) % 8), 1 + (i % 8), -1,
                          0x1000 + 4 * i));
    CoreRig rig(ops);
    const uint64_t cycles = runCore(rig.core);
    EXPECT_GE(cycles, 200u);
    EXPECT_LT(cycles, 400u);
}

TEST(OooCore, TwoCycleAluDoublesChainTime)
{
    auto make_ops = [] {
        std::vector<MicroOp> ops;
        ops.push_back(alu(1, -1));
        for (int i = 0; i < 1999; ++i)
            ops.push_back(alu(1 + ((i + 1) % 8), 1 + (i % 8), -1,
                              0x1000 + 4 * (i % 256)));
        return ops;
    };
    CoreParams slow;
    slow.fu.timings.aluLat = 2;
    CoreRig fast_rig(make_ops());
    CoreRig slow_rig(make_ops(), slow);
    const uint64_t fast_cycles = runCore(fast_rig.core);
    const uint64_t slow_cycles = runCore(slow_rig.core);
    EXPECT_NEAR(static_cast<double>(slow_cycles) / fast_cycles, 2.0,
                0.2);
}

TEST(OooCore, LoadLatencyOnCriticalPath)
{
    // Address-chained loads: each load's address register depends on
    // the previous load's value, so every DL1 round trip lands on
    // the critical path.
    std::vector<MicroOp> ops;
    ops.push_back(load(1, 0x8000)); // warms the line
    for (int i = 0; i < 100; ++i) {
        ops.push_back(load(1, 0x8000, 1));
        ops.push_back(alu(2, 1));
    }
    CoreRig fast_rig(ops); // DL1 RT 2
    const uint64_t fast_cycles = runCore(fast_rig.core);

    mem::HierarchyParams tfet_mem = memParams();
    tfet_mem.lat.dl1Rt = 4; // TFET DL1
    CoreRig slow_rig(ops, CoreParams{}, tfet_mem);
    const uint64_t slow_cycles = runCore(slow_rig.core);
    EXPECT_GT(slow_cycles, fast_cycles + 150);
}

TEST(OooCore, StoreToLoadForwardingIsFast)
{
    // A load that hits a pending store forwards in ~2 cycles instead
    // of paying the memory round trip.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 100; ++i) {
        ops.push_back(store(0x9000, -1));
        ops.push_back(load(1, 0x9000));
        ops.push_back(alu(2, 1));
    }
    CoreRig rig(ops);
    runCore(rig.core);
    EXPECT_GT(rig.core.stats().value("forwarded_loads"), 90u);
}

TEST(OooCore, ForwardingRequiresContainment)
{
    // A narrow store under a wide load overlaps but cannot supply all
    // of the load's bytes: the load must wait for the store and then
    // access memory (counted as a partial-forward replay), never
    // forward stale data.
    std::vector<MicroOp> ops;
    ops.push_back(load(1, 0x9000)); // warms the line
    for (int i = 0; i < 100; ++i) {
        ops.push_back(store(0x9000, -1, 4));
        ops.push_back(load(1, 0x9000, -1, 8));
        ops.push_back(alu(2, 1));
    }
    CoreRig rig(ops);
    runCore(rig.core);
    EXPECT_EQ(rig.core.stats().value("forwarded_loads"), 0u);
    EXPECT_GT(rig.core.stats().value("partial_forward_replays"),
              90u);
    EXPECT_EQ(rig.core.committedOps(), ops.size());
}

TEST(OooCore, DisjointBytesInSameChunkDoNotAlias)
{
    // Regression for the chunk-granularity aliasing bug: a 4-byte
    // store at 0x9004 and a 4-byte load at 0x9000 share an 8-byte
    // chunk but touch disjoint bytes, so the load must neither
    // forward nor replay against the store.
    std::vector<MicroOp> ops;
    ops.push_back(load(1, 0x9000)); // warms the line
    for (int i = 0; i < 100; ++i) {
        ops.push_back(store(0x9004, -1, 4));
        ops.push_back(load(1, 0x9000, -1, 4));
        ops.push_back(alu(2, 1));
    }
    CoreRig rig(ops);
    runCore(rig.core);
    EXPECT_EQ(rig.core.stats().value("forwarded_loads"), 0u);
    EXPECT_EQ(rig.core.stats().value("partial_forward_replays"), 0u);
    EXPECT_EQ(rig.core.committedOps(), ops.size());
}

TEST(OooCore, ContainedNarrowLoadForwards)
{
    // A narrow load fully inside a pending wide store forwards even
    // though their addresses differ.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 100; ++i) {
        ops.push_back(store(0x9000, -1, 8));
        ops.push_back(load(1, 0x9004, -1, 4));
        ops.push_back(alu(2, 1));
    }
    CoreRig rig(ops);
    runCore(rig.core);
    EXPECT_GT(rig.core.stats().value("forwarded_loads"), 90u);
    EXPECT_EQ(rig.core.stats().value("partial_forward_replays"), 0u);
}

TEST(OooCore, ChunkSpanningOverlapReplays)
{
    // A load straddling the end of a pending store overlaps it
    // (first 4 bytes) without being contained; the old chunk compare
    // missed this aliasing when the addresses fell in different
    // 8-byte chunks.
    std::vector<MicroOp> ops;
    ops.push_back(load(1, 0x9000));
    ops.push_back(load(1, 0x9008)); // warm both lines' chunks
    for (int i = 0; i < 100; ++i) {
        ops.push_back(store(0x9000, -1, 8));
        ops.push_back(load(1, 0x9004, -1, 8));
        ops.push_back(alu(2, 1));
    }
    CoreRig rig(ops);
    runCore(rig.core);
    EXPECT_EQ(rig.core.stats().value("forwarded_loads"), 0u);
    EXPECT_GT(rig.core.stats().value("partial_forward_replays"),
              90u);
}

TEST(OooCore, MispredictBlocksFetch)
{
    // Random branches cause redirects with the frontend penalty.
    std::vector<MicroOp> ops;
    Rng rng(3);
    uint64_t pc = 0x1000;
    for (int i = 0; i < 50; ++i) {
        for (int j = 0; j < 3; ++j) {
            ops.push_back(alu(1 + (j % 8), -1, -1, pc));
            pc += 4;
        }
        MicroOp br;
        br.cls = OpClass::Branch;
        br.pc = pc;
        br.taken = rng.chance(0.5);
        br.target = br.taken ? 0x1000 : pc + 4;
        pc = br.taken ? 0x1000 : pc + 4;
        ops.push_back(br);
    }
    CoreRig rig(ops);
    runCore(rig.core);
    EXPECT_GT(rig.core.stats().value("mispredict_redirects"), 5u);
    EXPECT_EQ(rig.core.committedOps(), ops.size());
}

TEST(OooCore, RobFullBackpressure)
{
    CoreParams params;
    params.robSize = 8;
    // A long-latency head (div) blocks commit while independents pile
    // up: the ROB-full stall counter must fire.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i) {
        MicroOp div;
        div.cls = OpClass::IntDiv;
        div.dst = 1;
        div.pc = 0x1000;
        ops.push_back(div);
        for (int j = 0; j < 7; ++j)
            ops.push_back(alu(2 + j, -1, -1, 0x1010 + j * 4));
    }
    CoreRig rig(ops, params);
    runCore(rig.core);
    EXPECT_GT(rig.core.stats().value("rob_full_stalls"), 0u);
    EXPECT_EQ(rig.core.committedOps(), ops.size());
}

TEST(OooCore, FpRegisterFileBackpressure)
{
    CoreParams params;
    params.fpRegs = 34; // only 2 in-flight FP destinations
    std::vector<MicroOp> ops;
    for (int i = 0; i < 60; ++i) {
        MicroOp fp;
        fp.cls = OpClass::FpMult;
        fp.dst = kNumIntRegs + (i % 8);
        fp.pc = 0x1000 + 4 * i;
        ops.push_back(fp);
    }
    CoreRig rig(ops, params);
    runCore(rig.core);
    EXPECT_GT(rig.core.stats().value("fp_rf_stalls"), 0u);
    EXPECT_EQ(rig.core.committedOps(), ops.size());
}

TEST(OooCore, LsqBackpressure)
{
    CoreParams params;
    params.lsqSize = 4;
    std::vector<MicroOp> ops;
    for (int i = 0; i < 100; ++i)
        ops.push_back(load(1 + (i % 8), 0x100000 + 64 * i));
    CoreRig rig(ops, params);
    runCore(rig.core);
    EXPECT_GT(rig.core.stats().value("lsq_full_stalls"), 0u);
    EXPECT_EQ(rig.core.committedOps(), ops.size());
}

TEST(OooCore, BarrierParksAndReleases)
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(1, -1));
    MicroOp barrier;
    barrier.cls = OpClass::Barrier;
    ops.push_back(barrier);
    ops.push_back(alu(2, -1));

    CoreRig rig(ops);
    mem::Cycle now = 0;
    while (!rig.core.waitingAtBarrier()) {
        rig.core.tick(now++);
        ASSERT_LT(now, 1000u);
    }
    EXPECT_EQ(rig.core.committedOps(), 1u);
    EXPECT_FALSE(rig.core.finished());
    rig.core.releaseBarrier();
    while (!rig.core.finished()) {
        rig.core.tick(now++);
        ASSERT_LT(now, 2000u);
    }
    EXPECT_EQ(rig.core.committedOps(), 2u);
}

TEST(OooCore, SteeringMarksProducersWithNearbyConsumers)
{
    CoreParams params;
    params.steerDependents = true;
    params.fu.dualSpeedAlu = true;
    params.fu.numFastAlus = 1;
    params.fu.timings.aluLat = 2;

    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i) {
        ops.push_back(alu(1, -1, -1, 0x1000 + 8 * i));
        ops.push_back(alu(2, 1, -1, 0x1004 + 8 * i)); // consumer
    }
    CoreRig rig(ops, params);
    runCore(rig.core);
    EXPECT_GT(rig.core.stats().value("steered_fast"), 25u);
    uint64_t fast = rig.core.fuPool().stats().value("fast_alu_ops");
    EXPECT_GE(fast, 20u);
}

TEST(OooCore, NoSteeringWithoutConsumers)
{
    CoreParams params;
    params.steerDependents = true;
    params.fu.dualSpeedAlu = true;
    params.fu.numFastAlus = 1;

    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i)
        ops.push_back(alu(1 + (i % 20), -1, -1, 0x1000 + 4 * i));
    CoreRig rig(ops, params);
    runCore(rig.core);
    EXPECT_EQ(rig.core.stats().value("steered_fast"), 0u);
}

// ------------------------- Property tests -------------------------

class OooCorePropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OooCorePropertyTest, RandomProgramsCommitCompletely)
{
    Rng rng(GetParam());
    std::vector<MicroOp> ops;
    uint64_t pc = 0x1000;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        const double r = rng.uniform();
        MicroOp op;
        op.pc = pc;
        pc += 4;
        if (r < 0.2) {
            op.cls = OpClass::Load;
            op.addr = 0x100000 + rng.range(4096) * 8;
            op.dst = static_cast<int16_t>(1 + rng.range(60));
            op.src1 = static_cast<int16_t>(rng.range(31));
        } else if (r < 0.3) {
            op.cls = OpClass::Store;
            op.addr = 0x100000 + rng.range(4096) * 8;
            op.src1 = static_cast<int16_t>(rng.range(31));
            op.src2 = static_cast<int16_t>(rng.range(62));
        } else if (r < 0.4) {
            op.cls = rng.chance(0.5) ? OpClass::FpAdd
                                     : OpClass::FpMult;
            op.dst = static_cast<int16_t>(
                kNumIntRegs + 1 + rng.range(30));
            op.src1 = static_cast<int16_t>(
                kNumIntRegs + rng.range(31));
            op.src2 = static_cast<int16_t>(
                kNumIntRegs + rng.range(31));
        } else if (r < 0.5) {
            op.cls = OpClass::Branch;
            op.taken = rng.chance(0.5);
            op.target = op.taken
                ? 0x1000 + rng.range(512) * 4
                : op.pc + 4;
        } else if (r < 0.53) {
            op.cls = rng.chance(0.5) ? OpClass::IntMult
                                     : OpClass::IntDiv;
            op.dst = static_cast<int16_t>(1 + rng.range(30));
            op.src1 = static_cast<int16_t>(rng.range(31));
        } else {
            op.cls = OpClass::IntAlu;
            op.dst = static_cast<int16_t>(1 + rng.range(30));
            op.src1 = static_cast<int16_t>(rng.range(31));
            if (rng.chance(0.6))
                op.src2 = static_cast<int16_t>(rng.range(31));
        }
        ops.push_back(op);
    }

    CoreRig rig(ops);
    mem::Cycle now = 0;
    while (!rig.core.finished() && now < 1000000) {
        rig.core.tick(now);
        ++now;
        if (now % 512 == 0) {
            ASSERT_TRUE(rig.core.checkDependencyOrder());
            ASSERT_TRUE(rig.core.checkOccupancyBounds());
        }
    }
    EXPECT_TRUE(rig.core.finished());
    EXPECT_EQ(rig.core.committedOps(), ops.size());
    // IPC can never exceed the machine width.
    EXPECT_GE(now * 4, ops.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OooCorePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

TEST(OooCore, IncrementalOccupancyMatchesPerCycleWalk)
{
    // The occupancy integrals are maintained incrementally (satellite
    // of the event-horizon work); replay the per-cycle structure walk
    // they replaced and require exact agreement.
    Rng rng(7);
    std::vector<MicroOp> ops;
    for (int i = 0; i < 2000; ++i) {
        const double r = rng.uniform();
        if (r < 0.25)
            ops.push_back(load(1 + static_cast<int16_t>(rng.range(30)),
                               0x200000 + rng.range(1 << 14) * 8,
                               static_cast<int16_t>(rng.range(31))));
        else if (r < 0.35)
            ops.push_back(store(0x200000 + rng.range(1 << 14) * 8,
                                static_cast<int16_t>(rng.range(31))));
        else
            ops.push_back(alu(1 + static_cast<int16_t>(rng.range(30)),
                              static_cast<int16_t>(rng.range(31)),
                              static_cast<int16_t>(rng.range(31)),
                              0x1000 + 4 * i));
    }

    CoreRig rig(ops);
    uint64_t ticks = 0;
    uint64_t rob_occ = 0;
    uint64_t iq_occ = 0;
    uint64_t lsq_occ = 0;
    mem::Cycle now = 0;
    while (!rig.core.finished() && now < 1000000) {
        ++ticks;
        rob_occ += rig.core.robOccupancy();
        iq_occ += rig.core.iqOccupancy();
        lsq_occ += rig.core.lsqOccupancy();
        rig.core.tick(now);
        ++now;
    }
    ASSERT_TRUE(rig.core.finished());

    const StatGroup &s = rig.core.stats();
    EXPECT_EQ(s.value("ticks"), ticks);
    EXPECT_EQ(s.value("rob_occ_cycles"), rob_occ);
    EXPECT_EQ(s.value("iq_occ_cycles"), iq_occ);
    EXPECT_EQ(s.value("lsq_occ_cycles"), lsq_occ);
    EXPECT_GT(rob_occ, 0u);
    EXPECT_GT(iq_occ, 0u);
    EXPECT_GT(lsq_occ, 0u);
}
