/**
 * @file
 * Shared-memory contention subsystem tests: the shared-address
 * workload generator (trace v3), the SyncController lock/event timing
 * model, the scratchpad path through the hierarchy, and the
 * end-to-end invariants — contention drives real coherence and wait
 * counters into the report, and the report stays byte-identical
 * across event-horizon skipping, --no-skip, and preempt/resume.
 */

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hh"
#include "core/dse.hh"
#include "core/experiment.hh"
#include "cpu/sync.hh"
#include "mem/hierarchy.hh"
#include "mem/scratchpad.hh"
#include "workload/cpu_profiles.hh"
#include "workload/shared_gen.hh"
#include "workload/trace_file.hh"

namespace hetsim
{
namespace
{

using core::CpuConfig;
using core::CpuOutcome;
using core::ExperimentOptions;
using core::runCpuExperiment;
using cpu::MicroOp;
using cpu::OpClass;
using cpu::SyncController;
using workload::AppProfile;
using workload::SharedCpuTrace;

/** Drain a generator into a vector (with a runaway guard). */
std::vector<MicroOp>
drain(cpu::TraceSource &src)
{
    std::vector<MicroOp> ops;
    MicroOp op;
    while (src.next(op)) {
        ops.push_back(op);
        if (ops.size() > 5'000'000) {
            ADD_FAILURE() << "generator never finished";
            break;
        }
    }
    return ops;
}

bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    return a.cls == b.cls && a.src1 == b.src1 && a.src2 == b.src2 &&
        a.dst == b.dst && a.pc == b.pc && a.addr == b.addr &&
        a.target == b.target && a.taken == b.taken &&
        a.accessSize == b.accessSize;
}

/** Find a counter in a report; -1 when the group or name is absent
 *  (so expectations print a useful value instead of crashing). */
int64_t
counterValue(const obs::RunReport &rep, const std::string &group,
             const std::string &name)
{
    for (const obs::GroupSnapshot &g : rep.groups) {
        if (g.name != group)
            continue;
        for (const auto &[n, v] : g.counters)
            if (n == name)
                return static_cast<int64_t>(v);
    }
    return -1;
}

/** Sample count of a distribution; -1 when absent. */
int64_t
distCount(const obs::RunReport &rep, const std::string &group,
          const std::string &name)
{
    for (const obs::GroupSnapshot &g : rep.groups) {
        if (g.name != group)
            continue;
        for (const obs::DistributionSnapshot &d : g.distributions)
            if (d.name == name)
                return static_cast<int64_t>(d.count);
    }
    return -1;
}

// ---------------------------------------------------------------------
// Workload generator (trace v3).
// ---------------------------------------------------------------------

TEST(SharedGen, ByteIdenticalPerSeedAndDivergentAcrossSeeds)
{
    const AppProfile &app = workload::cpuApp("lock_heavy");
    ASSERT_TRUE(app.sharing.enabled);

    SharedCpuTrace a(app, 1, 4, 7, 0.02);
    SharedCpuTrace b(app, 1, 4, 7, 0.02);
    const std::vector<MicroOp> sa = drain(a);
    const std::vector<MicroOp> sb = drain(b);
    ASSERT_GT(sa.size(), 0u);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i)
        ASSERT_TRUE(sameOp(sa[i], sb[i])) << "op " << i << " differs";

    SharedCpuTrace c(app, 1, 4, 8, 0.02);
    const std::vector<MicroOp> sc = drain(c);
    bool differs = sc.size() != sa.size();
    for (size_t i = 0; !differs && i < sa.size(); ++i)
        differs = !sameOp(sa[i], sc[i]);
    EXPECT_TRUE(differs) << "seed change did not change the stream";
}

TEST(SharedGen, LockRecordsAreBalancedAndNeverNested)
{
    const AppProfile &app = workload::cpuApp("lock_heavy");
    ASSERT_GT(app.sharing.locks, 0u);

    SharedCpuTrace gen(app, 0, 4, 1, 0.02);
    uint64_t acquires = 0, releases = 0;
    int depth = 0;
    uint64_t held = 0;
    MicroOp op;
    while (gen.next(op)) {
        if (op.cls == OpClass::LockAcquire) {
            ++acquires;
            ++depth;
            held = op.addr;
            EXPECT_GE(op.addr, workload::kLockVarBase);
        } else if (op.cls == OpClass::LockRelease) {
            ++releases;
            --depth;
            EXPECT_EQ(op.addr, held) << "release of a different lock";
        } else if (op.cls == OpClass::Barrier ||
                   op.cls == OpClass::WaitEvt) {
            // Deadlock freedom: no blocking op inside a critical
            // section.
            EXPECT_EQ(depth, 0) << "blocking op while holding a lock";
        }
        ASSERT_GE(depth, 0);
        ASSERT_LE(depth, 1) << "critical sections must not nest";
    }
    EXPECT_GT(acquires, 0u);
    EXPECT_EQ(acquires, releases);
    EXPECT_EQ(depth, 0);
}

TEST(SharedGen, EveryThreadEmitsTheSameBarrierCount)
{
    const AppProfile &app = workload::cpuApp("barrier_sync");
    ASSERT_GT(app.sharing.barrierPeriodOps, 0u);

    uint64_t expect = 0;
    for (uint32_t tid = 0; tid < 4; ++tid) {
        SharedCpuTrace gen(app, tid, 4, 1, 0.02);
        const uint64_t announced = gen.totalBarriers();
        uint64_t emitted = 0, locks = 0;
        MicroOp op;
        while (gen.next(op)) {
            if (op.cls == OpClass::Barrier)
                ++emitted;
            if (op.cls == OpClass::LockAcquire)
                ++locks;
        }
        EXPECT_EQ(emitted, announced) << "thread " << tid;
        // Periodic barriers disable locks (a barrier inside a
        // critical section could park a lock holder).
        EXPECT_EQ(locks, 0u) << "thread " << tid;
        if (tid == 0)
            expect = announced;
        else
            EXPECT_EQ(announced, expect) << "thread " << tid;
    }
    EXPECT_GT(expect, 0u);
}

TEST(SharedGen, SyncRecordsSurviveTraceFileRoundTrip)
{
    const AppProfile &app = workload::cpuApp("prodcons");
    ASSERT_TRUE(app.sharing.prodCons);

    SharedCpuTrace gen(app, 1, 4, 3, 0.02);
    const std::vector<MicroOp> ref = drain(gen);
    uint64_t sync_ops = 0;
    for (const MicroOp &op : ref)
        if (cpu::isSyncClass(op.cls))
            ++sync_ops;
    ASSERT_GT(sync_ops, 0u) << "prodcons emitted no sync records";

    char tmpl[] = "/tmp/hetsim_sync_trace_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string path = std::string(tmpl) + "/t.hstr";

    SharedCpuTrace again(app, 1, 4, 3, 0.02);
    Result<uint64_t> wrote = workload::recordTrace(again, path);
    ASSERT_TRUE(wrote.ok()) << wrote.status().toString();
    EXPECT_EQ(*wrote, ref.size());

    auto replay = workload::FileTrace::open(path);
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_EQ((*replay)->version(), workload::kTraceVersion);
    const std::vector<MicroOp> back = drain(**replay);
    EXPECT_TRUE((*replay)->status().ok());
    ASSERT_EQ(back.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_TRUE(sameOp(ref[i], back[i])) << "record " << i;

    const std::string cmd = "rm -rf " + std::string(tmpl);
    (void)::system(cmd.c_str());
}

// ---------------------------------------------------------------------
// SyncController timing model.
// ---------------------------------------------------------------------

MicroOp
syncOp(OpClass cls, uint64_t addr)
{
    MicroOp op;
    op.cls = cls;
    op.addr = addr;
    return op;
}

TEST(SyncControllerTest, UncontendedAcquireParksForItsOwnAccessesOnly)
{
    mem::MemHierarchy h(mem::HierarchyParams{});
    SyncController sc(4, &h);
    const uint64_t lock = workload::lockVarAddr(0);

    sc.execute(0, syncOp(OpClass::LockAcquire, lock), 100);
    EXPECT_FALSE(sc.idle());
    const mem::Cycle wake = sc.wakeCycle(0);
    ASSERT_NE(wake, mem::kNoEvent);
    EXPECT_GT(wake, 100u);
    EXPECT_FALSE(sc.tryUnpark(0, wake - 1));
    EXPECT_TRUE(sc.tryUnpark(0, wake));

    sc.execute(0, syncOp(OpClass::LockRelease, lock), 200);
    EXPECT_TRUE(sc.tryUnpark(0, sc.wakeCycle(0)));
    EXPECT_TRUE(sc.idle());

    const obs::GroupSnapshot s = obs::snapshotGroup(sc.stats());
    for (const auto &[n, v] : s.counters) {
        if (n == "lock_acquires") {
            EXPECT_EQ(v, 1u);
        } else if (n == "lock_acquires_blocked") {
            EXPECT_EQ(v, 0u);
        } else if (n == "lock_releases") {
            EXPECT_EQ(v, 1u);
        }
    }
}

TEST(SyncControllerTest, ContendedLockHandsOffInFifoOrder)
{
    mem::MemHierarchy h(mem::HierarchyParams{});
    SyncController sc(4, &h);
    const uint64_t lock = workload::lockVarAddr(1);

    sc.execute(0, syncOp(OpClass::LockAcquire, lock), 100);
    ASSERT_TRUE(sc.tryUnpark(0, sc.wakeCycle(0)));

    // Two spinners queue behind the holder; their wake cycle is
    // unknowable until the release.
    sc.execute(1, syncOp(OpClass::LockAcquire, lock), 200);
    sc.execute(2, syncOp(OpClass::LockAcquire, lock), 210);
    EXPECT_EQ(sc.wakeCycle(1), mem::kNoEvent);
    EXPECT_EQ(sc.wakeCycle(2), mem::kNoEvent);
    EXPECT_FALSE(sc.tryUnpark(1, 10'000));
    EXPECT_FALSE(sc.tryUnpark(2, 10'000));

    // Release hands off to the *oldest* waiter; the other keeps
    // spinning.
    sc.execute(0, syncOp(OpClass::LockRelease, lock), 300);
    ASSERT_TRUE(sc.tryUnpark(0, sc.wakeCycle(0)));
    const mem::Cycle w1 = sc.wakeCycle(1);
    ASSERT_NE(w1, mem::kNoEvent);
    EXPECT_GT(w1, 300u);
    EXPECT_EQ(sc.wakeCycle(2), mem::kNoEvent);
    ASSERT_TRUE(sc.tryUnpark(1, w1));

    sc.execute(1, syncOp(OpClass::LockRelease, lock), 400);
    ASSERT_TRUE(sc.tryUnpark(1, sc.wakeCycle(1)));
    const mem::Cycle w2 = sc.wakeCycle(2);
    ASSERT_NE(w2, mem::kNoEvent);
    ASSERT_TRUE(sc.tryUnpark(2, w2));
    EXPECT_FALSE(sc.idle()); // Core 2 still holds the lock.

    sc.execute(2, syncOp(OpClass::LockRelease, lock), 500);
    ASSERT_TRUE(sc.tryUnpark(2, sc.wakeCycle(2)));
    EXPECT_TRUE(sc.idle());

    const obs::GroupSnapshot s = obs::snapshotGroup(sc.stats());
    for (const auto &[n, v] : s.counters) {
        if (n == "lock_acquires") {
            EXPECT_EQ(v, 3u);
        } else if (n == "lock_acquires_blocked") {
            EXPECT_EQ(v, 2u);
        } else if (n == "lock_releases") {
            EXPECT_EQ(v, 3u);
        }
    }
    for (const obs::DistributionSnapshot &d : s.distributions)
        if (d.name == "lock_wait_cycles") {
            EXPECT_EQ(d.count, 3u);
            // The blocked waiters' residency dominates their own
            // access latency, so the max must reflect real waiting.
            EXPECT_GT(d.max, 50.0);
        }
}

TEST(SyncControllerTest, EventSemaphoreCountsSignalsAndBlocksWaiters)
{
    mem::MemHierarchy h(mem::HierarchyParams{});
    SyncController sc(4, &h);
    const uint64_t evt = workload::eventVarAddr(0);

    // Signal before wait: the wait consumes the pending count and
    // never blocks.
    sc.execute(0, syncOp(OpClass::SignalEvt, evt), 100);
    ASSERT_TRUE(sc.tryUnpark(0, sc.wakeCycle(0)));
    sc.execute(1, syncOp(OpClass::WaitEvt, evt), 200);
    ASSERT_NE(sc.wakeCycle(1), mem::kNoEvent);
    ASSERT_TRUE(sc.tryUnpark(1, sc.wakeCycle(1)));

    // Wait before signal: blocks until the signal arrives.
    sc.execute(2, syncOp(OpClass::WaitEvt, evt), 300);
    EXPECT_EQ(sc.wakeCycle(2), mem::kNoEvent);
    EXPECT_FALSE(sc.idle());
    sc.execute(3, syncOp(OpClass::SignalEvt, evt), 400);
    ASSERT_TRUE(sc.tryUnpark(3, sc.wakeCycle(3)));
    const mem::Cycle w2 = sc.wakeCycle(2);
    ASSERT_NE(w2, mem::kNoEvent);
    EXPECT_GT(w2, 400u);
    ASSERT_TRUE(sc.tryUnpark(2, w2));
    EXPECT_TRUE(sc.idle());

    const obs::GroupSnapshot s = obs::snapshotGroup(sc.stats());
    for (const auto &[n, v] : s.counters) {
        if (n == "signals") {
            EXPECT_EQ(v, 2u);
        } else if (n == "waits") {
            EXPECT_EQ(v, 2u);
        } else if (n == "waits_blocked") {
            EXPECT_EQ(v, 1u);
        }
    }
}

// ---------------------------------------------------------------------
// Scratchpad path through the hierarchy.
// ---------------------------------------------------------------------

TEST(ScratchpadTest, InWindowAccessesBypassTheCacheHierarchy)
{
    mem::HierarchyParams p;
    p.spad.enabled = true;
    p.spad.sizeKb = 16;
    p.spad.latency = 2;
    mem::MemHierarchy h(p);
    ASSERT_NE(h.scratchpad(), nullptr);

    const mem::Addr in = mem::kScratchpadBase + 64;
    const mem::AccessResult r =
        h.access(0, in, mem::AccessType::Load, 0);
    EXPECT_EQ(r.source, mem::AccessSource::Scratchpad);
    EXPECT_EQ(r.latency, 2u);
    EXPECT_EQ(h.scratchpad()->coreAccesses(0), 1u);

    // Past the backed capacity the same window falls through to the
    // cached path (software still runs, it just pays cache latency).
    const mem::Addr past = mem::kScratchpadBase + 16 * 1024;
    const mem::AccessResult r2 =
        h.access(0, past, mem::AccessType::Load, 10);
    EXPECT_NE(r2.source, mem::AccessSource::Scratchpad);

    // Another core's window is not this core's scratchpad.
    const mem::Addr other =
        mem::kScratchpadBase + mem::kScratchpadStride + 64;
    const mem::AccessResult r3 =
        h.access(0, other, mem::AccessType::Load, 20);
    EXPECT_NE(r3.source, mem::AccessSource::Scratchpad);
    EXPECT_EQ(h.scratchpad()->coreAccesses(0), 1u);

    // Without a scratchpad the window is ordinary cached memory.
    mem::MemHierarchy plain{mem::HierarchyParams{}};
    EXPECT_EQ(plain.scratchpad(), nullptr);
    const mem::AccessResult r4 =
        plain.access(0, in, mem::AccessType::Load, 0);
    EXPECT_NE(r4.source, mem::AccessSource::Scratchpad);
}

TEST(ScratchpadTest, HierarchyValidationRefusesBadConfigs)
{
    mem::HierarchyParams ok;
    EXPECT_TRUE(mem::validateHierarchyParams(ok).ok());

    mem::HierarchyParams inverted;
    inverted.lat.l3Rt = inverted.lat.l2Rt - 1;
    Status s = mem::validateHierarchyParams(inverted);
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);

    mem::HierarchyParams zero;
    zero.lat.dramRt = 0;
    EXPECT_EQ(mem::validateHierarchyParams(zero).code(),
              ErrorCode::InvalidArgument);

    mem::HierarchyParams per_core = ok;
    per_core.perCoreLat.assign(per_core.numCores, ok.lat);
    per_core.perCoreLat[1].l2Rt = per_core.perCoreLat[1].l3Rt + 10;
    EXPECT_EQ(mem::validateHierarchyParams(per_core).code(),
              ErrorCode::InvalidArgument);

    mem::HierarchyParams bad_spad;
    bad_spad.spad.enabled = true;
    bad_spad.spad.latency = 0;
    EXPECT_EQ(mem::validateHierarchyParams(bad_spad).code(),
              ErrorCode::InvalidArgument);

    mem::HierarchyParams cores;
    cores.numCores = 0;
    EXPECT_EQ(mem::validateHierarchyParams(cores).code(),
              ErrorCode::InvalidArgument);
}

TEST(ScratchpadTest, DseSpaceEnumeratesScratchpadDesigns)
{
    const std::vector<core::CpuHybridDesign> designs =
        core::enumerateCpuDesigns();
    size_t spad_cmos = 0, spad_tfet = 0;
    for (const core::CpuHybridDesign &d : designs) {
        if (!d.scratchpad) {
            // Canonical form: the device axis collapses while the
            // unit is absent (keeps design hashing unambiguous).
            EXPECT_EQ(d.spadDev, power::DeviceClass::Cmos);
            EXPECT_EQ(core::designName(d).find(" spad="),
                      std::string::npos);
            continue;
        }
        const std::string name = core::designName(d);
        if (d.spadDev == power::DeviceClass::Tfet) {
            ++spad_tfet;
            EXPECT_NE(name.find(" spad=T"), std::string::npos);
        } else {
            ++spad_cmos;
            EXPECT_NE(name.find(" spad=C"), std::string::npos);
        }
    }
    EXPECT_GT(spad_cmos, 0u);
    EXPECT_GT(spad_tfet, 0u);
    EXPECT_EQ(spad_cmos, spad_tfet);
}

// ---------------------------------------------------------------------
// End-to-end contention invariants.
// ---------------------------------------------------------------------

ExperimentOptions
contentionOpts()
{
    ExperimentOptions opts;
    opts.scale = 0.05;
    opts.coresOverride = 4;
    return opts;
}

TEST(ContentionEndToEnd, LockContentionDrivesCoherenceAndWaitStats)
{
    obs::RunReport rep;
    const CpuOutcome out =
        runCpuExperiment(CpuConfig::BaseCmos,
                         workload::cpuApp("lock_heavy"),
                         contentionOpts(), &rep);
    EXPECT_GT(out.cycles, 0u);
    EXPECT_FALSE(out.timedOut);

    EXPECT_GT(counterValue(rep, "sync", "lock_acquires"), 0);
    EXPECT_GT(counterValue(rep, "sync", "lock_acquires_blocked"), 0);
    EXPECT_EQ(counterValue(rep, "sync", "lock_acquires"),
              counterValue(rep, "sync", "lock_releases"));
    EXPECT_GT(distCount(rep, "sync", "lock_wait_cycles"), 0);
    EXPECT_GT(distCount(rep, "sync", "barrier_wait_cycles"), 0);

    // Real MESI traffic: spinners' cached lock-line copies are
    // invalidated by the releaser's upgrade store.
    int64_t invals = 0;
    for (uint32_t c = 0; c < 4; ++c) {
        const int64_t v = counterValue(
            rep, "hierarchy",
            "core" + std::to_string(c) + "_invalidations_received");
        ASSERT_GE(v, 0) << "missing per-core invalidation counter";
        invals += v;
    }
    EXPECT_GT(invals, 0);
    EXPECT_GT(counterValue(rep, "hierarchy", "true_sharing_misses"),
              0);
}

TEST(ContentionEndToEnd, FalseSharingWorkloadIsClassifiedAsSuch)
{
    obs::RunReport rep;
    const CpuOutcome out =
        runCpuExperiment(CpuConfig::BaseCmos,
                         workload::cpuApp("false_share"),
                         contentionOpts(), &rep);
    EXPECT_GT(out.cycles, 0u);
    EXPECT_GT(counterValue(rep, "hierarchy", "false_sharing_misses"),
              0);
}

TEST(ContentionEndToEnd, SkipAndNoSkipReportsAreByteIdentical)
{
    obs::RunReport skip, no_skip;
    ExperimentOptions opts = contentionOpts();
    const CpuOutcome a = runCpuExperiment(
        CpuConfig::BaseHet, workload::cpuApp("lock_heavy"), opts,
        &skip);
    opts.noSkip = true;
    const CpuOutcome b = runCpuExperiment(
        CpuConfig::BaseHet, workload::cpuApp("lock_heavy"), opts,
        &no_skip);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(skip.toJson(), no_skip.toJson());
}

volatile sig_atomic_t g_sync_preempt = 0;

TEST(ContentionEndToEnd, PreemptResumeOnContentionIsByteIdentical)
{
    char tmpl[] = "/tmp/hetsim_sync_ckpt_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string path =
        std::string(tmpl) + "/run" + core::kCheckpointSuffix;

    ExperimentOptions opts = contentionOpts();
    opts.checkpointPath = path;
    opts.checkpointEveryCycles = 2000;

    obs::RunReport ref_rep;
    const CpuOutcome ref = runCpuExperiment(
        CpuConfig::BaseHet, workload::cpuApp("barrier_sync"), opts,
        &ref_rep);
    ASSERT_FALSE(ref.preempted);

    // Preempt (flag already set: the run drains at its first
    // checkpoint poll, saving lock/barrier/park state mid-workload),
    // then resume and finish.
    g_sync_preempt = 1;
    opts.preempt = &g_sync_preempt;
    const CpuOutcome cut = runCpuExperiment(
        CpuConfig::BaseHet, workload::cpuApp("barrier_sync"), opts);
    ASSERT_TRUE(cut.preempted);
    EXPECT_LT(cut.cycles, ref.cycles);

    g_sync_preempt = 0;
    obs::RunReport resumed_rep;
    const CpuOutcome resumed = runCpuExperiment(
        CpuConfig::BaseHet, workload::cpuApp("barrier_sync"), opts,
        &resumed_rep);
    EXPECT_FALSE(resumed.preempted);
    EXPECT_EQ(resumed.cycles, ref.cycles);
    EXPECT_EQ(resumed_rep.toJson(), ref_rep.toJson());

    const std::string cmd = "rm -rf " + std::string(tmpl);
    (void)::system(cmd.c_str());
}

TEST(ContentionEndToEnd, ScratchpadWorkloadReportsScratchpadTraffic)
{
    // The stock configs carry no scratchpad; the spad_stream
    // workload still runs (in-window accesses fall through to the
    // caches) and the report simply has no scratchpad group.
    obs::RunReport rep;
    const CpuOutcome out =
        runCpuExperiment(CpuConfig::BaseCmos,
                         workload::cpuApp("spad_stream"),
                         contentionOpts(), &rep);
    EXPECT_GT(out.cycles, 0u);
    EXPECT_EQ(counterValue(rep, "scratchpad", "reads"), -1);

    // A design with the scratchpad axis on serves the same workload
    // from the array: traffic lands in the scratchpad group and the
    // unit shows up with activity in the energy accounting.
    core::CpuHybridDesign d;
    d.scratchpad = true;
    d.spadDev = power::DeviceClass::Tfet;
    Result<core::CpuConfigBundle> bundle =
        core::synthesizeCpuBundle(d);
    ASSERT_TRUE(bundle.ok()) << bundle.status().toString();

    obs::RunReport spad_rep;
    const CpuOutcome spad_out = core::runCpuBundle(
        *bundle, core::designName(d), workload::cpuApp("spad_stream"),
        contentionOpts(), &spad_rep);
    EXPECT_GT(spad_out.cycles, 0u);
    EXPECT_GT(counterValue(spad_rep, "scratchpad", "reads"), 0);

    uint64_t spad_activity = 0;
    for (const obs::UnitEnergy &u : spad_rep.units)
        if (u.name == "scratchpad")
            spad_activity += u.activity;
    EXPECT_GT(spad_activity, 0u);
}

} // namespace
} // namespace hetsim
