/**
 * @file
 * Table I: characteristics of CMOS and TFET technologies at 15nm.
 *
 * Prints the device database verbatim plus the derived ratios the
 * architecture analysis uses (Section III).
 */

#include "common/table.hh"
#include "device/technology.hh"

using namespace hetsim;
using device::Tech;

int
main()
{
    const Tech techs[] = {Tech::SiCmos, Tech::HetJTfet,
                          Tech::InAsCmos, Tech::HomJTfet};

    TablePrinter t("Table I: device characteristics at 15nm",
                   {"parameter", "Si-CMOS", "HetJTFET", "InAs-CMOS",
                    "HomJTFET"});

    auto row = [&](const char *name, auto field, int prec) {
        std::vector<std::string> cells = {name};
        for (Tech tech : techs)
            cells.push_back(
                formatDouble(field(device::techParams(tech)), prec));
        t.addRow(cells);
    };

    using P = device::TechParams;
    row("Supply voltage (V)",
        [](const P &p) { return p.supplyVoltage; }, 2);
    row("Transistor switching delay (ps)",
        [](const P &p) { return p.switchingDelayPs; }, 2);
    row("Interconnect delay per transistor length (ps)",
        [](const P &p) { return p.interconnectDelayPs; }, 2);
    row("32bit ALU delay (ps)",
        [](const P &p) { return p.aluDelayPs; }, 0);
    row("Transistor switching energy (aJ)",
        [](const P &p) { return p.switchingEnergyAj; }, 2);
    row("Interconnect energy per transistor length (aJ)",
        [](const P &p) { return p.interconnectEnergyAj; }, 2);
    row("32bit ALU dynamic energy (fJ)",
        [](const P &p) { return p.aluDynamicEnergyFj; }, 1);
    row("32bit ALU leakage power (uW)",
        [](const P &p) { return p.aluLeakagePowerUw; }, 2);
    row("ALU power density (W/cm^2)",
        [](const P &p) { return p.aluPowerDensity; }, 1);
    t.print();
    t.writeCsv("table1_devices.csv");

    TablePrinter r("Derived ratios vs Si-CMOS (Section III)",
                   {"ratio", "Si-CMOS", "HetJTFET", "InAs-CMOS",
                    "HomJTFET"});
    auto ratio_row = [&](const char *name, auto field) {
        std::vector<std::string> cells = {name};
        for (Tech tech : techs)
            cells.push_back(
                formatDouble(field(device::techRatios(tech)), 2));
        r.addRow(cells);
    };
    using R = device::TechRatios;
    ratio_row("switching delay",
              [](const R &x) { return x.delayVsCmos; });
    ratio_row("ALU dynamic energy",
              [](const R &x) { return x.aluEnergyVsCmos; });
    ratio_row("ALU leakage power",
              [](const R &x) { return x.aluLeakageVsCmos; });
    ratio_row("ALU power density",
              [](const R &x) { return x.powerDensityVsCmos; });
    r.print();
    return 0;
}
