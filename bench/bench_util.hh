/**
 * @file
 * Shared helpers for the figure/table bench harnesses.
 *
 * Every bench binary reproduces one table or figure of the paper: it
 * runs the relevant (configuration x workload) matrix, prints the same
 * rows/series the paper reports (normalized to the paper's baseline),
 * and mirrors the table to a CSV file next to the binary.
 *
 * Usage of every bench binary:
 *   bench_figN [scale]
 * where `scale` (default 1.0) multiplies workload sizes; use smaller
 * values for quick runs.
 */

#ifndef HETSIM_BENCH_BENCH_UTIL_HH
#define HETSIM_BENCH_BENCH_UTIL_HH

#include <functional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/experiment.hh"

namespace hetsim::bench
{

/** Parse the common [scale] argument. */
core::ExperimentOptions parseOptions(int argc, char **argv,
                                     double default_scale = 1.0);

/** Results of a CPU config x app matrix with the baseline first. */
struct CpuSuite
{
    std::vector<core::CpuConfig> configs;
    std::vector<workload::AppProfile> apps;
    std::vector<core::CpuOutcome> outcomes;

    const core::CpuOutcome &at(size_t cfg, size_t app) const;
    const core::CpuOutcome &baseline(size_t app) const;
};

/** Run a CPU suite (configs x all 14 paper apps). */
CpuSuite runCpuSuite(const std::vector<core::CpuConfig> &configs,
                     const core::ExperimentOptions &opts);

/** Results of a GPU config x kernel matrix with the baseline first. */
struct GpuSuite
{
    std::vector<core::GpuConfig> configs;
    std::vector<workload::KernelProfile> kernels;
    std::vector<core::GpuOutcome> outcomes;

    const core::GpuOutcome &at(size_t cfg, size_t kernel) const;
    const core::GpuOutcome &baseline(size_t kernel) const;
};

/** Run a GPU suite (configs x all paper kernels). */
GpuSuite runGpuSuite(const std::vector<core::GpuConfig> &configs,
                     const core::ExperimentOptions &opts);

/** Per-app normalized metric selected by `metric`. */
using CpuMetricFn =
    std::function<double(const core::CpuOutcome &run,
                         const core::CpuOutcome &base)>;
using GpuMetricFn =
    std::function<double(const core::GpuOutcome &run,
                         const core::GpuOutcome &base)>;

/**
 * Print (and CSV-mirror) a figure table: one row per app, one column
 * per configuration, values normalized to the suite baseline, plus a
 * trailing arithmetic-mean row (the paper's "Average" bars).
 */
void printCpuFigure(const std::string &title, const CpuSuite &suite,
                    const CpuMetricFn &metric,
                    const std::string &csv_path);

void printGpuFigure(const std::string &title, const GpuSuite &suite,
                    const GpuMetricFn &metric,
                    const std::string &csv_path);

/** Normalized time / energy / ED / ED^2 metric functions. @{ */
double cpuNormTime(const core::CpuOutcome &r, const core::CpuOutcome &b);
double cpuNormEnergy(const core::CpuOutcome &r,
                     const core::CpuOutcome &b);
double cpuNormEd(const core::CpuOutcome &r, const core::CpuOutcome &b);
double cpuNormEd2(const core::CpuOutcome &r, const core::CpuOutcome &b);
double gpuNormTime(const core::GpuOutcome &r, const core::GpuOutcome &b);
double gpuNormEnergy(const core::GpuOutcome &r,
                     const core::GpuOutcome &b);
double gpuNormEd2(const core::GpuOutcome &r, const core::GpuOutcome &b);
/** @} */

} // namespace hetsim::bench

#endif // HETSIM_BENCH_BENCH_UTIL_HH
