/**
 * @file
 * Figure 12: ED^2 of the GPU designs, normalized to BaseCMOS.
 *
 * Paper shapes: BaseHet worse than BaseCMOS; AdvHet ~0.91 (the RF
 * cache pays off); AdvHet-2X ~0.40.
 */

#include "bench/bench_util.hh"
#include "core/configs.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);
    bench::GpuSuite suite =
        bench::runGpuSuite(core::figure10Configs(), opts);
    bench::printGpuFigure(
        "Figure 12: GPU ED^2 (normalized to BaseCMOS)", suite,
        bench::gpuNormEd2, "fig12_gpu_ed2.csv");
    return 0;
}
