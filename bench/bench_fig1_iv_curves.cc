/**
 * @file
 * Figure 1: I_D-V_G characteristics of N-HetJTFET and N-MOSFET.
 *
 * Prints the sweep the paper plots: the TFET's steep sub-threshold
 * slope, its crossover above the MOSFET at low V_G, and its
 * saturation past ~0.6 V while the MOSFET keeps scaling.
 */

#include <cstdio>

#include "common/table.hh"
#include "device/iv_curve.hh"

using namespace hetsim;
using device::IvCurve;
using device::IvDevice;

int
main()
{
    IvCurve tfet(IvDevice::NHetJTfet);
    IvCurve mosfet(IvDevice::NMosfet);

    TablePrinter t("Figure 1: I_D-V_G at 15nm (A/um)",
                   {"V_G (V)", "N-HetJTFET", "N-MOSFET",
                    "TFET SS (mV/dec)", "MOSFET SS (mV/dec)"});
    for (int i = 0; i <= 16; ++i) {
        const double vg = 0.05 * i;
        char tfet_i[32], mos_i[32];
        std::snprintf(tfet_i, sizeof(tfet_i), "%.3e",
                      tfet.current(vg));
        std::snprintf(mos_i, sizeof(mos_i), "%.3e",
                      mosfet.current(vg));
        t.addRow({formatDouble(vg, 2), tfet_i, mos_i,
                  formatDouble(std::min(
                      tfet.subthresholdSlopeMvPerDecade(vg), 999.0),
                      0),
                  formatDouble(std::min(
                      mosfet.subthresholdSlopeMvPerDecade(vg), 999.0),
                      0)});
    }
    t.print();
    t.writeCsv("fig1_iv_curves.csv");

    std::printf("\nTFET I_on/I_off at 0.4 V: %.1e   "
                "MOSFET I_on/I_off at 0.73 V: %.1e\n",
                tfet.onOffRatio(0.40), mosfet.onOffRatio(0.73));
    std::printf("V_G where TFET current saturates (~99%% of 0.8 V "
                "value): %.2f V\n",
                tfet.turnOnVoltage(0.99, 0.8));
    return 0;
}
