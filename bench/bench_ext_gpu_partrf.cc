/**
 * @file
 * Extension experiment (Section VIII related work [59]): a
 * partitioned GPU register file as an alternative to the AdvHet
 * register-file cache.
 *
 * The fast partition (lowest 64 registers) stays in CMOS at 1-cycle
 * ports; the remaining 192 registers are the TFET slow partition.
 * The paper notes "such a design can readily be adapted to AdvHet";
 * this bench quantifies it against both BaseHet (no mitigation) and
 * AdvHet (RF cache).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/configs.hh"
#include "gpu/gpu.hh"
#include "workload/gpu_kernel_gen.hh"

using namespace hetsim;

namespace
{

core::GpuOutcome
runPartitioned(const workload::KernelProfile &kernel,
               const core::ExperimentOptions &opts)
{
    core::GpuConfigBundle b =
        core::makeGpuConfig(core::GpuConfig::BaseHet,
                            opts.freqGhz / 2.0);
    b.sim.cu.timings.partitionedRf = true;
    b.sim.cu.timings.fastPartitionRegs = 64;
    // Energy split: a quarter of the RF is the CMOS fast partition.
    auto &slow =
        b.units[static_cast<int>(power::GpuUnit::VectorRf)];
    auto &fast =
        b.units[static_cast<int>(power::GpuUnit::VectorRfFast)];
    slow.leakOnlyScale = 0.75;
    fast.dev = power::DeviceClass::Cmos;
    fast.leakOnlyScale = 0.25;

    workload::SyntheticKernel k(kernel, opts.seed, opts.scale);
    gpu::Gpu gpu(b.sim);
    const gpu::GpuResult run = gpu.run(k);

    core::GpuOutcome out;
    out.config = "AdvHet-PartRF";
    out.kernel = kernel.name;
    out.cycles = run.cycles;
    out.issuedOps = run.issuedOps;
    out.energy = power::computeGpuEnergy(run.activity, b.units,
                                         run.seconds, b.numCus);
    out.metrics.seconds = run.seconds;
    out.metrics.energyJ = out.energy.totalJ();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);

    TablePrinter t("Extension: partitioned RF vs RF cache on the "
                   "HetCore GPU (normalized to BaseCMOS)",
                   {"kernel", "BaseHet time", "PartRF time",
                    "AdvHet time", "BaseHet energy", "PartRF energy",
                    "AdvHet energy"});

    double sums[6] = {};
    const auto &kernels = workload::gpuKernels();
    for (const auto &kernel : kernels) {
        std::fprintf(stderr, "  %s...\n", kernel.name);
        const core::GpuOutcome base = core::runGpuExperiment(
            core::GpuConfig::BaseCmos, kernel, opts);
        const core::GpuOutcome het = core::runGpuExperiment(
            core::GpuConfig::BaseHet, kernel, opts);
        const core::GpuOutcome part = runPartitioned(kernel, opts);
        const core::GpuOutcome adv = core::runGpuExperiment(
            core::GpuConfig::AdvHet, kernel, opts);
        const double vals[6] = {
            het.metrics.seconds / base.metrics.seconds,
            part.metrics.seconds / base.metrics.seconds,
            adv.metrics.seconds / base.metrics.seconds,
            het.metrics.energyJ / base.metrics.energyJ,
            part.metrics.energyJ / base.metrics.energyJ,
            adv.metrics.energyJ / base.metrics.energyJ,
        };
        for (int i = 0; i < 6; ++i)
            sums[i] += vals[i];
        t.addRow(kernel.name, {vals[0], vals[1], vals[2], vals[3],
                               vals[4], vals[5]});
    }
    std::vector<double> means;
    for (double s : sums)
        means.push_back(s / kernels.size());
    t.addRow("Average", means);
    t.print();
    t.writeCsv("ext_gpu_partrf.csv");
    return 0;
}
