/**
 * @file
 * Extension experiment (Section VIII): iso-area comparison of AdvHet
 * against the related-work heterogeneous CMOS+TFET multicore with an
 * idealized barrier-aware thread-migration scheme.
 *
 * The paper states: "It can be shown that AdvHet provides, on
 * average, higher performance while consuming lower energy. This is
 * because the threads on the TFET cores slow down the program, while
 * the threads on the CMOS cores consume more power than in AdvHet."
 * This bench regenerates that claim.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/area.hh"
#include "core/hetcmp.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);

    const core::HetCmpShape shape = core::hetCmpIsoAreaShape();
    std::printf("Iso-area shapes: AdvHet = 4 hetero-device cores "
                "(%.1f mm^2); HetCMP = %u CMOS + %u TFET cores "
                "(%.1f mm^2)\n",
                shape.budgetAreaMm2, shape.cmosCores,
                shape.tfetCores, shape.chipAreaMm2);

    TablePrinter t("Extension: AdvHet vs heterogeneous CMOS+TFET "
                   "multicore (iso-area, normalized to BaseCMOS)",
                   {"app", "AdvHet time", "HetCMP time",
                    "AdvHet energy", "HetCMP energy", "AdvHet ED^2",
                    "HetCMP ED^2"});

    double sums[6] = {};
    const auto &apps = workload::cpuApps();
    for (const auto &app : apps) {
        std::fprintf(stderr, "  %s...\n", app.name);
        const core::CpuOutcome base = core::runCpuExperiment(
            core::CpuConfig::BaseCmos, app, opts);
        const core::CpuOutcome adv = core::runCpuExperiment(
            core::CpuConfig::AdvHet, app, opts);
        const core::HetCmpOutcome cmp =
            core::runHetCmpExperiment(app, opts);

        const double vals[6] = {
            adv.metrics.seconds / base.metrics.seconds,
            cmp.metrics.seconds / base.metrics.seconds,
            adv.metrics.energyJ / base.metrics.energyJ,
            cmp.metrics.energyJ / base.metrics.energyJ,
            adv.metrics.ed2Js2() / base.metrics.ed2Js2(),
            cmp.metrics.ed2Js2() / base.metrics.ed2Js2(),
        };
        for (int i = 0; i < 6; ++i)
            sums[i] += vals[i];
        t.addRow(app.name,
                 {vals[0], vals[1], vals[2], vals[3], vals[4],
                  vals[5]});
    }
    std::vector<double> means;
    for (double s : sums)
        means.push_back(s / apps.size());
    t.addRow("Average", means);
    t.print();
    t.writeCsv("ext_hetcmp_isoarea.csv");

    std::printf("\nPaper's Section VIII claim holds iff AdvHet's "
                "mean time and energy are both lower: %s\n",
                means[0] < means[1] && means[2] < means[3]
                    ? "HOLDS" : "VIOLATED");
    return 0;
}
