/**
 * @file
 * Figure 14: impact of DVFS and process variation on the energy of
 * BaseCMOS and AdvHet.
 *
 * Four operating points: 2 GHz (BaseFreq), 2.5 GHz (BoostFreq),
 * 1.5 GHz (SlowFreq), and 2 GHz with the 15nm process-variation
 * guardbands (+120 mV CMOS / +70 mV TFET). All bars are normalized
 * to BaseCMOS at 2 GHz.
 *
 * Paper shapes: AdvHet saves ~39% at 2 GHz, slightly less (~36%) at
 * 2.5 GHz (the flatter TFET V-f curve demands a larger dV), slightly
 * more (~43%) at 1.5 GHz, and ~37% under variation guardbands.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/configs.hh"
#include "core/dvfs.hh"

using namespace hetsim;

namespace
{

struct Point
{
    const char *label;
    double freqGhz;
    bool guardband;
};

} // namespace

int
main(int argc, char **argv)
{
    core::ExperimentOptions base_opts =
        bench::parseOptions(argc, argv);

    const Point points[] = {
        {"BaseFreq-2GHz", 2.0, false},
        {"BoostFreq-2.5GHz", 2.5, false},
        {"SlowFreq-1.5GHz", 1.5, false},
        {"Variation-2GHz", 2.0, true},
    };

    // Reference: BaseCMOS at 2 GHz.
    double ref_energy = 0.0;
    std::vector<double> base_e, adv_e, save;
    TablePrinter t("Figure 14: DVFS and process variation "
                   "(energy normalized to BaseCMOS at 2 GHz)",
                   {"operating point", "V_CMOS", "V_TFET", "BaseCMOS",
                    "AdvHet", "AdvHet saving"});

    const auto &apps = workload::cpuApps();
    for (const Point &p : points) {
        core::ExperimentOptions opts = base_opts;
        opts.freqGhz = p.freqGhz;
        opts.variationGuardband = p.guardband;

        double cmos = 0.0, adv = 0.0;
        for (const auto &app : apps) {
            std::fprintf(stderr, "  %s / %s...\n", p.label, app.name);
            cmos += core::runCpuExperiment(core::CpuConfig::BaseCmos,
                                           app, opts)
                        .metrics.energyJ;
            adv += core::runCpuExperiment(core::CpuConfig::AdvHet,
                                          app, opts)
                       .metrics.energyJ;
        }
        if (p.freqGhz == 2.0 && !p.guardband)
            ref_energy = cmos;

        core::OperatingPoint op = core::cpuOperatingPoint(p.freqGhz);
        if (p.guardband)
            op = core::withVariationGuardband(op);

        t.addRow({p.label, formatDouble(op.vCmos, 3),
                  formatDouble(op.vTfet, 3),
                  formatDouble(cmos / ref_energy, 3),
                  formatDouble(adv / ref_energy, 3),
                  formatDouble(1.0 - adv / cmos, 3)});
    }
    t.print();
    t.writeCsv("fig14_dvfs_variation.csv");
    return 0;
}
