/**
 * @file
 * Figure 3: V_dd-frequency curves for Si-CMOS and HetJTFET, and the
 * DVFS voltage pairs of Section III-D.
 *
 * Paper anchor points: (0.73 V, 2 GHz) CMOS and (0.40 V, 2 GHz
 * effective) TFET; boosting to 2.5 GHz needs +75 mV CMOS / +90 mV
 * TFET; slowing to 1.5 GHz gives back -70 mV / -80 mV.
 */

#include <cstdio>

#include "common/table.hh"
#include "device/vf_curve.hh"

using namespace hetsim;

int
main()
{
    TablePrinter t("Figure 3: V_dd vs effective core frequency",
                   {"f (GHz)", "V_CMOS (V)", "V_TFET (V)",
                    "dV_CMOS (mV)", "dV_TFET (mV)"});
    const device::DvfsPoint nominal = device::dvfsPointFor(2.0);
    for (double f = 1.0; f <= 2.75; f += 0.25) {
        const device::DvfsPoint p = device::dvfsPointFor(f);
        t.addRow({formatDouble(f, 2), formatDouble(p.vCmos, 3),
                  formatDouble(p.vTfet, 3),
                  formatDouble(1000 * (p.vCmos - nominal.vCmos), 0),
                  formatDouble(1000 * (p.vTfet - nominal.vTfet), 0)});
    }
    t.print();
    t.writeCsv("fig3_vf_curves.csv");

    std::printf("\nTFET curve saturates at %.2f GHz "
                "(CMOS keeps scaling to %.2f GHz)\n",
                device::tfetVfCurve().maxFreq(),
                device::cmosVfCurve().maxFreq());
    return 0;
}
