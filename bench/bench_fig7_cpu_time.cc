/**
 * @file
 * Figure 7: execution time of the CPU designs, normalized to BaseCMOS.
 *
 * Paper shapes to look for: BaseTFET ~1.96x, BaseHet ~1.40x, AdvHet
 * ~1.10x, AdvHet-2X ~0.68x; BaseCMOS-Enh ~1.0x.
 */

#include "bench/bench_util.hh"
#include "core/configs.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);
    bench::CpuSuite suite =
        bench::runCpuSuite(core::figure7Configs(), opts);
    bench::printCpuFigure(
        "Figure 7: CPU execution time (normalized to BaseCMOS)",
        suite, bench::cpuNormTime, "fig7_cpu_time.csv");
    return 0;
}
