/**
 * @file
 * Figure 13: sensitivity analysis of the HetCore CPU designs.
 *
 * Compares BaseCMOS, BaseL3, BaseHighVt, BaseHet-FastALU, BaseHet,
 * BaseHet-Enh, BaseHet-Split, and AdvHet on execution time, energy,
 * ED, and ED^2 (all normalized to BaseCMOS, averaged over the apps).
 *
 * Paper shapes: BaseL3 saves ~10% energy at BaseCMOS-like speed;
 * BaseHighVt is slightly slower *and* consumes more energy; BaseHet
 * is ~2% slower than BaseHet-FastALU but saves ~10% energy; Enh adds
 * ~3% speed, Split ~2% more, and the asymmetric DL1 (AdvHet) a large
 * further step at roughly equal energy.
 */

#include "bench/bench_util.hh"
#include "core/configs.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);
    bench::CpuSuite suite =
        bench::runCpuSuite(core::figure13Configs(), opts);

    // Mean-normalized summary (the paper's bar heights).
    TablePrinter t("Figure 13: sensitivity analysis "
                   "(mean, normalized to BaseCMOS)",
                   {"config", "time", "energy", "ED", "ED^2"});
    for (size_t c = 0; c < suite.configs.size(); ++c) {
        double time = 0, energy = 0, ed = 0, ed2 = 0;
        for (size_t a = 0; a < suite.apps.size(); ++a) {
            const auto &r = suite.at(c, a);
            const auto &b = suite.baseline(a);
            time += bench::cpuNormTime(r, b);
            energy += bench::cpuNormEnergy(r, b);
            ed += bench::cpuNormEd(r, b);
            ed2 += bench::cpuNormEd2(r, b);
        }
        const double n = static_cast<double>(suite.apps.size());
        t.addRow(core::cpuConfigName(suite.configs[c]),
                 {time / n, energy / n, ed / n, ed2 / n});
    }
    t.print();
    t.writeCsv("fig13_sensitivity.csv");

    // Per-app execution time detail.
    bench::printCpuFigure(
        "Figure 13 detail: per-app execution time "
        "(normalized to BaseCMOS)",
        suite, bench::cpuNormTime, "fig13_sensitivity_time.csv");
    return 0;
}
