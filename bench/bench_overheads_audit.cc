/**
 * @file
 * Section V-B audit: the multi-V_dd overhead derivation chain, printed
 * from the model constants so the documentation can never drift from
 * the code.
 *
 * Paper chain: TFET stages lose up to 15% delay (5% unequal work
 * partitioning + 10% level converter or slow latch); recovering it
 * costs a 40 mV V_TFET guardband (0.40 -> 0.44 V), which raises TFET
 * power by 24% and cuts the ideal 8x dynamic-power advantage to
 * ~6.1x; the evaluation then conservatively assumes only 4x.
 */

#include <cstdio>

#include "common/table.hh"
#include "device/leakage.hh"
#include "device/overheads.hh"
#include "device/variation.hh"

using namespace hetsim;
using namespace hetsim::device;

int
main()
{
    TablePrinter t("Section V-B: multi-V_dd substrate overheads",
                   {"overhead", "value", "consequence"});
    t.addRow({"dual V_dd rails (area)",
              formatDouble(100 * kDualRailAreaOverhead, 0) + "%",
              "core area grows by this factor (see core/area)"});
    t.addRow({"level converter (stage delay)",
              formatDouble(100 * kLevelConverterDelayOverhead, 0) +
                  "%",
              "paid by stages crossing TFET->CMOS"});
    t.addRow({"unequal stage partitioning",
              formatDouble(100 * kStageImbalanceDelayOverhead, 0) +
                  "%",
              "pipeline slices are never perfectly even"});
    t.addRow({"slow TFET latch",
              formatDouble(100 * kTfetLatchDelayOverhead, 0) + "%",
              "latches are ~10% of stage latency"});
    t.addRow({"worst-case TFET stage delay",
              formatDouble(100 * kTfetStageDelayOverhead, 0) + "%",
              "imbalance + max(converter, latch)"});
    t.addRow({"V_TFET guardband",
              formatDouble(1000 * kTfetGuardbandVolts, 0) + " mV",
              formatDouble(kTfetNominalVdd, 2) + " V -> " +
                  formatDouble(kTfetOperatingVdd, 2) +
                  " V operating point"});
    t.addRow({"guardband power penalty",
              formatDouble(100 * kGuardbandPowerPenalty, 0) + "%",
              "TFET dynamic power increase"});
    t.addRow({"latch power (deeper pipeline)",
              formatDouble(100 * kExtraLatchPowerOverhead, 0) + "%",
              "extra latches per TFET stage"});
    t.addRow({"ideal dynamic-power advantage",
              formatDouble(kIdealTfetDynamicPowerAdvantage, 1) + "x",
              "Table I, same work per stage"});
    t.addRow({"realistic advantage after overheads",
              formatDouble(kRealisticTfetDynamicPowerAdvantage, 1) +
                  "x",
              "paper quotes ~6.1x"});
    t.addRow({"evaluation assumption",
              formatDouble(1.0 / kEvalTfetDynamicEnergyFactor, 0) +
                  "x",
              "conservative factor used in all results"});
    t.print();
    t.writeCsv("overheads_audit.csv");

    TablePrinter l("Section III-B: leakage discipline",
                   {"quantity", "value"});
    l.addRow({"high-Vt vs regular-Vt leakage",
              formatDouble(1.0 / kHighVtLeakageRatio, 1) +
                  "x lower"});
    l.addRow({"core logic high-Vt fraction",
              formatDouble(100 * kCoreLogicHighVtFraction, 0) + "%"});
    l.addRow({"dual-Vt unit leakage vs all-regular",
              formatDouble(
                  100 * dualVtLeakageFactor(kCoreLogicHighVtFraction),
                  0) + "% (paper: ~42%)"});
    l.addRow({"HetJTFET vs dual-Vt CMOS leakage",
              formatDouble(1.0 / tfetLeakageVsDualVtCmos(0.60), 0) +
                  "x lower (paper: ~125x)"});
    l.addRow({"evaluation assumption",
              formatDouble(1.0 / 0.10, 0) +
                  "x lower than all-high-Vt CMOS"});
    l.addRow({"variation guardbands (CMOS/TFET)",
              formatDouble(1000 * kVariationGuardbandCmos, 0) +
                  " mV / " +
                  formatDouble(1000 * kVariationGuardbandTfet, 0) +
                  " mV"});
    l.print();
    return 0;
}
