/**
 * @file
 * Extension experiment (Section IV-C4): latency-optimized FPU design
 * points for AdvHet.
 *
 * The paper declines to use FPU designs that trade area/power for
 * latency (Booth-3 encodings, CMA-style forwarding) and leaves their
 * analysis to future work. This bench performs that analysis: an
 * AdvHet whose TFET FPUs forward multiply/add results one cycle
 * earlier (CMA-style) at 20% higher FPU dynamic energy.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/configs.hh"
#include "cpu/multicore.hh"
#include "workload/cpu_trace_gen.hh"

using namespace hetsim;

namespace
{

core::CpuOutcome
runVariant(const workload::AppProfile &app,
           const core::ExperimentOptions &opts, bool cma)
{
    core::CpuConfigBundle b =
        core::makeCpuConfig(core::CpuConfig::AdvHet, opts.freqGhz);
    if (cma) {
        // CMA-style forwarding: one cycle shaved off add/multiply.
        b.sim.core.fu.timings.fpAddLat -= 1;
        b.sim.core.fu.timings.fpMulLat -= 1;
    }
    auto traces = workload::makeCpuWorkload(app, b.numCores,
                                            opts.seed, opts.scale);
    std::vector<cpu::TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    cpu::Multicore mc(b.sim, ptrs);
    const cpu::MulticoreResult run = mc.run();

    power::CpuActivity activity = run.activity;
    uint64_t fast = 0;
    for (uint32_t c = 0; c < mc.numCores(); ++c)
        fast += mc.core(c).fuPool().stats().value("fast_alu_ops");
    activity[static_cast<int>(power::CpuUnit::Alu)] -= fast;
    activity[static_cast<int>(power::CpuUnit::AluFast)] += fast;

    // The CMA multiplier burns ~20% more FPU dynamic energy.
    if (cma) {
        activity[static_cast<int>(power::CpuUnit::Fpu)] =
            static_cast<uint64_t>(
                activity[static_cast<int>(power::CpuUnit::Fpu)] *
                1.2);
    }

    core::CpuOutcome out;
    out.config = cma ? "AdvHet-CMA" : "AdvHet";
    out.app = app.name;
    out.cycles = run.cycles;
    out.energy = power::computeCpuEnergy(activity, b.units,
                                         run.seconds, b.numCores);
    out.metrics.seconds = run.seconds;
    out.metrics.energyJ = out.energy.totalJ();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);

    TablePrinter t("Extension: CMA-style latency-optimized TFET "
                   "FPUs in AdvHet (normalized to BaseCMOS)",
                   {"app", "AdvHet time", "CMA time", "AdvHet energy",
                    "CMA energy", "AdvHet ED^2", "CMA ED^2"});

    double sums[6] = {};
    const auto &apps = workload::cpuApps();
    for (const auto &app : apps) {
        std::fprintf(stderr, "  %s...\n", app.name);
        const core::CpuOutcome base = core::runCpuExperiment(
            core::CpuConfig::BaseCmos, app, opts);
        const core::CpuOutcome adv = runVariant(app, opts, false);
        const core::CpuOutcome cma = runVariant(app, opts, true);
        const double vals[6] = {
            adv.metrics.seconds / base.metrics.seconds,
            cma.metrics.seconds / base.metrics.seconds,
            adv.metrics.energyJ / base.metrics.energyJ,
            cma.metrics.energyJ / base.metrics.energyJ,
            adv.metrics.ed2Js2() / base.metrics.ed2Js2(),
            cma.metrics.ed2Js2() / base.metrics.ed2Js2(),
        };
        for (int i = 0; i < 6; ++i)
            sums[i] += vals[i];
        t.addRow(app.name, {vals[0], vals[1], vals[2], vals[3],
                            vals[4], vals[5]});
    }
    std::vector<double> means;
    for (double s : sums)
        means.push_back(s / apps.size());
    t.addRow("Average", means);
    t.print();
    t.writeCsv("ext_fpu_design.csv");
    return 0;
}
