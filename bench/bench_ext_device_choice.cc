/**
 * @file
 * Extension experiment (Section III): why HetCore uses HetJTFET and
 * not the even-lower-power InAs-CMOS or HomJTFET devices.
 *
 * The paper argues (Section III-A) that a 2x speed differential can
 * be absorbed by pipelining TFET units twice as deep, but the ~10x
 * (InAs-CMOS) and ~16x (HomJTFET) differentials "would require
 * unrealistic 10x and 16x deeper pipelines". This bench builds those
 * hypothetical cores anyway — BaseHet variants whose converted units
 * carry 10x/16x latencies and the matching Table I energy ratios —
 * and shows the quantitative result: enormous slowdowns that wipe
 * out the extra energy savings on every efficiency metric.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/configs.hh"
#include "cpu/multicore.hh"
#include "workload/cpu_trace_gen.hh"

using namespace hetsim;

namespace
{

/** Build a BaseHet-like bundle whose converted units are `mult`x
 *  slower than CMOS and use the given device class. */
core::CpuConfigBundle
makeDeviceVariant(uint32_t mult, power::DeviceClass dev)
{
    core::CpuConfigBundle b =
        core::makeCpuConfig(core::CpuConfig::BaseCmos);
    cpu::FuTimings &t = b.sim.core.fu.timings;
    t.aluLat *= mult;
    t.mulLat *= mult;
    t.divLat *= mult;
    t.divIssueInterval *= mult;
    t.fpAddLat *= mult;
    t.fpMulLat *= mult;
    t.fpDivLat *= mult;
    t.fpDivIssueInterval *= mult;
    mem::LevelLatencies &l = b.sim.mem.lat;
    // The converted caches: DL1/L2/L3 access portions scale.
    l.dl1Rt = 2 * mult;
    l.l2Rt = 8 + 2 * mult;   // 8-cycle RT has ~2 cycles of array
    l.l3Rt = 32 + 4 * mult;  // 32-cycle RT has ~4 cycles of array
    for (power::CpuUnit u :
         {power::CpuUnit::Alu, power::CpuUnit::MulDiv,
          power::CpuUnit::Fpu, power::CpuUnit::Dl1,
          power::CpuUnit::L2, power::CpuUnit::L3})
        b.units[static_cast<int>(u)].dev = dev;
    return b;
}

power::RunMetrics
runBundle(const core::CpuConfigBundle &bundle,
          const workload::AppProfile &app,
          const core::ExperimentOptions &opts)
{
    auto traces = workload::makeCpuWorkload(app, bundle.numCores,
                                            opts.seed, opts.scale);
    std::vector<cpu::TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    cpu::Multicore mc(bundle.sim, ptrs);
    const cpu::MulticoreResult run = mc.run();
    const auto e = power::computeCpuEnergy(
        run.activity, bundle.units, run.seconds, bundle.numCores);
    return {run.seconds, e.totalJ()};
}

} // namespace

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);

    struct Variant
    {
        const char *name;
        uint32_t mult;
        power::DeviceClass dev;
    };
    const Variant variants[] = {
        {"Het-HetJTFET (2x, the paper's pick)", 2,
         power::DeviceClass::Tfet},
        {"Het-InAsCMOS (10x)", 10, power::DeviceClass::InAsCmos},
        {"Het-HomJTFET (16x)", 16, power::DeviceClass::HomJTfet},
    };

    TablePrinter t("Extension: device choice for the hetero-device "
                   "core (means, normalized to BaseCMOS)",
                   {"hypothetical core", "time", "energy", "ED",
                    "ED^2"});

    const auto &apps = workload::cpuApps();
    for (const Variant &v : variants) {
        std::fprintf(stderr, "  %s...\n", v.name);
        double time = 0, energy = 0, ed = 0, ed2 = 0;
        for (const auto &app : apps) {
            const core::CpuOutcome base = core::runCpuExperiment(
                core::CpuConfig::BaseCmos, app, opts);
            const power::RunMetrics m =
                runBundle(makeDeviceVariant(v.mult, v.dev), app,
                          opts);
            const double nt = m.seconds / base.metrics.seconds;
            const double ne = m.energyJ / base.metrics.energyJ;
            time += nt;
            energy += ne;
            ed += ne * nt;
            ed2 += ne * nt * nt;
        }
        const double n = static_cast<double>(apps.size());
        t.addRow(v.name, {time / n, energy / n, ed / n, ed2 / n});
    }
    t.print();
    t.writeCsv("ext_device_choice.csv");

    std::printf("\nSection III's argument, quantified: only the 2x "
                "HetJTFET differential keeps ED/ED^2 competitive; "
                "the 10x/16x devices trade small extra energy "
                "savings for catastrophic slowdowns.\n");
    return 0;
}
