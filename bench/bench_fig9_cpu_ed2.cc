/**
 * @file
 * Figure 9: energy-delay-squared (ED^2) of the CPU designs,
 * normalized to BaseCMOS.
 *
 * Paper shapes: BaseHet worse than BaseCMOS (slower), AdvHet lowest
 * among single-chip designs (~0.74), AdvHet-2X ~0.32.
 */

#include "bench/bench_util.hh"
#include "core/configs.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);
    bench::CpuSuite suite =
        bench::runCpuSuite(core::figure7Configs(), opts);
    bench::printCpuFigure(
        "Figure 9: CPU ED^2 (normalized to BaseCMOS)", suite,
        bench::cpuNormEd2, "fig9_cpu_ed2.csv");
    return 0;
}
