/**
 * @file
 * Figure 11: energy of the GPU designs, normalized to BaseCMOS, with
 * the dynamic/leakage split.
 *
 * Paper shapes: BaseTFET ~0.25, BaseHet ~0.65, AdvHet ~0.60,
 * AdvHet-2X ~0.66.
 */

#include "bench/bench_util.hh"
#include "core/configs.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);
    bench::GpuSuite suite =
        bench::runGpuSuite(core::figure10Configs(), opts);
    bench::printGpuFigure(
        "Figure 11: GPU energy (normalized to BaseCMOS)", suite,
        bench::gpuNormEnergy, "fig11_gpu_energy.csv");

    TablePrinter t("Figure 11 split: mean dynamic/leakage shares vs "
                   "BaseCMOS total",
                   {"config", "dynamic", "leakage", "total"});
    for (size_t c = 0; c < suite.configs.size(); ++c) {
        double dyn = 0.0, leak = 0.0;
        for (size_t k = 0; k < suite.kernels.size(); ++k) {
            const auto &e = suite.at(c, k).energy;
            const double base = suite.baseline(k).energy.totalJ();
            dyn += e.totalDynamicJ() / base;
            leak += e.totalLeakageJ() / base;
        }
        const double n = static_cast<double>(suite.kernels.size());
        t.addRow(core::gpuConfigName(suite.configs[c]),
                 {dyn / n, leak / n, (dyn + leak) / n});
    }
    t.print();
    t.writeCsv("fig11_gpu_energy_split.csv");
    return 0;
}
