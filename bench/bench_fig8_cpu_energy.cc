/**
 * @file
 * Figure 8: energy consumption of the CPU designs, normalized to
 * BaseCMOS, with the core/L2/L3 x dynamic/leakage breakdown.
 *
 * Paper shapes: BaseTFET ~0.24, BaseHet ~0.65, AdvHet ~0.61,
 * AdvHet-2X ~0.66; savings come from both dynamic and leakage energy.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/configs.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);
    bench::CpuSuite suite =
        bench::runCpuSuite(core::figure7Configs(), opts);

    bench::printCpuFigure(
        "Figure 8: CPU energy (normalized to BaseCMOS)", suite,
        bench::cpuNormEnergy, "fig8_cpu_energy.csv");

    // Average core/L2/L3 x dynamic/leakage breakdown per config,
    // normalized to the BaseCMOS total (the stacked bars).
    TablePrinter t("Figure 8 breakdown: mean energy shares vs "
                   "BaseCMOS total",
                   {"config", "core-dyn", "core-leak", "l2-dyn",
                    "l2-leak", "l3-dyn", "l3-leak", "total"});
    for (size_t c = 0; c < suite.configs.size(); ++c) {
        double parts[6] = {};
        double total = 0.0;
        for (size_t a = 0; a < suite.apps.size(); ++a) {
            const auto &e = suite.at(c, a).energy;
            const double base = suite.baseline(a).energy.totalJ();
            using power::EnergyGroup;
            const int core = static_cast<int>(EnergyGroup::Core);
            const int l2 = static_cast<int>(EnergyGroup::L2);
            const int l3 = static_cast<int>(EnergyGroup::L3);
            parts[0] += e.groupDynamicJ[core] / base;
            parts[1] += e.groupLeakageJ[core] / base;
            parts[2] += e.groupDynamicJ[l2] / base;
            parts[3] += e.groupLeakageJ[l2] / base;
            parts[4] += e.groupDynamicJ[l3] / base;
            parts[5] += e.groupLeakageJ[l3] / base;
            total += e.totalJ() / base;
        }
        std::vector<double> row;
        for (double p : parts)
            row.push_back(p / suite.apps.size());
        row.push_back(total / suite.apps.size());
        t.addRow(core::cpuConfigName(suite.configs[c]), row);
    }
    t.print();
    t.writeCsv("fig8_cpu_energy_breakdown.csv");
    return 0;
}
