/**
 * @file
 * Figure 10: execution time of the GPU designs, normalized to
 * BaseCMOS (which includes the register-file cache for fairness).
 *
 * Paper shapes: BaseTFET ~2.0x, BaseHet ~1.28x, AdvHet ~1.20x,
 * AdvHet-2X ~0.70x.
 */

#include "bench/bench_util.hh"
#include "core/configs.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const core::ExperimentOptions opts =
        bench::parseOptions(argc, argv);
    bench::GpuSuite suite =
        bench::runGpuSuite(core::figure10Configs(), opts);
    bench::printGpuFigure(
        "Figure 10: GPU execution time (normalized to BaseCMOS)",
        suite, bench::gpuNormTime, "fig10_gpu_time.csv");
    return 0;
}
