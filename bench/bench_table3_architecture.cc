/**
 * @file
 * Table III: parameters of the simulated architecture, printed from
 * the live configuration structs (so the table can never drift from
 * what the simulator actually runs).
 */

#include <string>

#include "common/table.hh"
#include "core/configs.hh"

using namespace hetsim;

int
main()
{
    const core::CpuConfigBundle cmos =
        core::makeCpuConfig(core::CpuConfig::BaseCmos);
    const core::CpuConfigBundle het =
        core::makeCpuConfig(core::CpuConfig::BaseHet);
    const core::CpuConfigBundle adv =
        core::makeCpuConfig(core::CpuConfig::AdvHet);
    const core::GpuConfigBundle gpu =
        core::makeGpuConfig(core::GpuConfig::AdvHet);

    const auto &c = cmos.sim.core;
    const auto &hfu = het.sim.core.fu.timings;
    const auto &cfu = c.fu.timings;
    const auto &cm = cmos.sim.mem;
    const auto &hm = het.sim.mem;

    auto cyc = [](uint32_t v) { return std::to_string(v); };

    TablePrinter t("Table III: parameters of the simulated "
                   "architecture",
                   {"parameter", "value"});
    t.addRow({"CPU hardware",
              std::to_string(cmos.numCores) +
                  " out-of-order cores, " +
                  std::to_string(c.issueWidth) + "-issue each, " +
                  formatDouble(cmos.freqGhz, 0) + "GHz"});
    t.addRow({"INT/FP RF; ROB",
              std::to_string(c.intRegs) + "/" +
                  std::to_string(c.fpRegs) + " regs; " +
                  std::to_string(c.robSize) + " entries"});
    t.addRow({"Issue queue",
              std::to_string(c.iqSize) + " entries"});
    t.addRow({"Ld-St queue",
              std::to_string(c.lsqSize) + " entries"});
    t.addRow({"Branch prediction",
              "Tournament: 2-level, " +
                  std::to_string(c.bp.rasEntries) + "-entry RAS, " +
                  std::to_string(c.bp.btbWays) + "way " +
                  std::to_string(c.bp.btbEntries / 1024) +
                  "K-entry BTB"});
    t.addRow({std::to_string(c.fu.numAlus) + " ALU",
              "CMOS: " + cyc(cfu.aluLat) + " cycle, TFET: " +
                  cyc(hfu.aluLat) + " cycles"});
    t.addRow({std::to_string(c.fu.numMulDiv) + " Int Mult/Div",
              "CMOS: " + cyc(cfu.mulLat) + "/" + cyc(cfu.divLat) +
                  " cycles, TFET: " + cyc(hfu.mulLat) + "/" +
                  cyc(hfu.divLat) + " cycles"});
    t.addRow({std::to_string(c.fu.numLsu) + " LSU",
              cyc(cfu.lsuLat) + " cycle"});
    t.addRow({std::to_string(c.fu.numFpu) + " FPU",
              "CMOS: Add/Mult/Div " + cyc(cfu.fpAddLat) + "/" +
                  cyc(cfu.fpMulLat) + "/" + cyc(cfu.fpDivLat) +
                  " cycles; TFET: " + cyc(hfu.fpAddLat) + "/" +
                  cyc(hfu.fpMulLat) + "/" + cyc(hfu.fpDivLat) +
                  " cycles; Div issues every " +
                  cyc(cfu.fpDivIssueInterval) + "/" +
                  cyc(hfu.fpDivIssueInterval) + " cycles"});
    t.addRow({"Private I-Cache",
              std::to_string(cm.il1SizeBytes / 1024) + "KB, " +
                  std::to_string(cm.il1Ways) +
                  "way, 64B line, RT: " + cyc(cm.lat.il1Rt) +
                  " cycles"});
    t.addRow({"Asym. FastCache",
              "4KB, 1way, WB, 64B line, RT: " +
                  cyc(adv.sim.mem.lat.dl1FastRt) + " cycle"});
    t.addRow({"Private D-Cache",
              std::to_string(cm.dl1SizeBytes / 1024) + "KB, " +
                  std::to_string(cm.dl1Ways) +
                  "way, WB, 64B line, RT: " + cyc(cm.lat.dl1Rt) +
                  " cycles (CMOS) or " + cyc(hm.lat.dl1Rt) +
                  " cycles (TFET)"});
    t.addRow({"Private L2",
              std::to_string(cm.l2SizeBytes / 1024) + "KB, " +
                  std::to_string(cm.l2Ways) +
                  "way, WB, 64B line, RT: " + cyc(cm.lat.l2Rt) +
                  " cycles (CMOS) or " + cyc(hm.lat.l2Rt) +
                  " cycles (TFET)"});
    t.addRow({"Shared L3",
              "Per core: " +
                  std::to_string(cm.l3SizePerCoreBytes /
                                 (1024 * 1024)) +
                  "MB, " + std::to_string(cm.l3Ways) +
                  "way, WB, 64B line, RT: " + cyc(cm.lat.l3Rt) +
                  " cycles (CMOS) or " + cyc(hm.lat.l3Rt) +
                  " cycles (TFET)"});
    t.addRow({"DRAM latency",
              "RT: 50ns (" + cyc(cm.lat.dramRt) +
                  " cycles at the design point)"});
    t.addRow({"GPU hardware",
              std::to_string(gpu.numCus) + " CUs with " +
                  std::to_string(gpu.sim.cu.lanes) + " EUs each, " +
                  formatDouble(gpu.freqGhz, 0) + "GHz"});
    t.addRow({"FMA unit",
              "CMOS: 3 cycles, TFET: " +
                  cyc(gpu.sim.cu.timings.fmaLat) +
                  " cycles, pipelined issue every cycle"});
    t.addRow({"Vector registers",
              "256 per thread, access: 1 cycle (CMOS) or " +
                  cyc(gpu.sim.cu.timings.rfLat) +
                  " cycles (TFET)"});
    t.addRow({"Register file cache",
              std::to_string(gpu.sim.cu.rfCacheEntries) +
                  " entries per thread, access: " +
                  cyc(gpu.sim.cu.timings.rfCacheLat) + " cycle"});
    t.addRow({"Network", "Ring with MESI directory-based protocol"});
    t.print();
    t.writeCsv("table3_architecture.csv");
    return 0;
}
