/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrate itself:
 * cache access throughput, branch-predictor throughput, OoO core
 * simulation speed, and GPU compute-unit simulation speed. These guard
 * against performance regressions in the simulator (the figure benches
 * above measure the *simulated* machine, not the simulator).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/configs.hh"
#include "cpu/branch_pred.hh"
#include "cpu/multicore.hh"
#include "gpu/gpu.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "workload/cpu_profiles.hh"
#include "workload/cpu_trace_gen.hh"
#include "workload/gpu_kernel_gen.hh"
#include "workload/gpu_profiles.hh"

using namespace hetsim;

namespace
{

void
BM_StatCounterStringLookup(benchmark::State &state)
{
    // The old hot-path pattern: a string-keyed map lookup on every
    // simulated event. Kept as the baseline the handle fix beats.
    StatGroup sg("bench");
    // A realistic population: hot-path groups hold ~10 counters.
    for (int i = 0; i < 12; ++i)
        ++sg.counter("counter_" + std::to_string(i));
    for (auto _ : state) {
        ++sg.counter("counter_7");
        benchmark::DoNotOptimize(sg);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterStringLookup);

void
BM_StatCounterHandle(benchmark::State &state)
{
    // The new pattern: the reference is resolved once at construction
    // (StatGroup references are stable), so each event is a plain
    // increment.
    StatGroup sg("bench");
    for (int i = 0; i < 12; ++i)
        ++sg.counter("counter_" + std::to_string(i));
    Counter &c = sg.counter("counter_7");
    for (auto _ : state) {
        ++c;
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterHandle);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheParams params{"bench", 32 * 1024, 8, 64, false};
    mem::Cache cache(params);
    Rng rng(42);
    for (auto _ : state) {
        const uint64_t addr = rng.range(1 << 20) * 64;
        auto r = cache.access(addr);
        if (!r.hit)
            cache.fill(addr, mem::CoherenceState::Shared);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyLoad(benchmark::State &state)
{
    mem::HierarchyParams params;
    params.numCores = 4;
    mem::MemHierarchy hier(params);
    Rng rng(42);
    mem::Cycle now = 0;
    for (auto _ : state) {
        const uint64_t addr = rng.range(1 << 18) * 64;
        auto r = hier.access(rng.range(4), addr,
                             mem::AccessType::Load, ++now);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyLoad);

void
BM_BranchPredictor(benchmark::State &state)
{
    cpu::BranchPredictor bp;
    Rng rng(7);
    cpu::MicroOp op;
    op.cls = cpu::OpClass::Branch;
    for (auto _ : state) {
        op.pc = 0x1000 + rng.range(256) * 4;
        op.taken = rng.chance(0.7);
        op.target = op.taken ? op.pc - 64 : op.pc + 4;
        benchmark::DoNotOptimize(bp.predictAndTrain(op));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void
BM_OooCoreSimulation(benchmark::State &state)
{
    // Simulated instructions per second of the full 4-core model.
    const auto found = workload::findCpuApp("water-sp");
    if (!found.ok()) {
        state.SkipWithError(found.status().toString().c_str());
        return;
    }
    const auto &app = *found.value();
    for (auto _ : state) {
        auto bundle = core::makeCpuConfig(core::CpuConfig::BaseCmos);
        auto traces = workload::makeCpuWorkload(
            app, bundle.numCores, 1, 0.05);
        std::vector<cpu::TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        cpu::Multicore mc(bundle.sim, ptrs);
        auto res = mc.run();
        state.SetItemsProcessed(state.items_processed() +
                                res.committedOps);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_OooCoreSimulation)->Unit(benchmark::kMillisecond);

void
BM_GpuSimulation(benchmark::State &state)
{
    const auto found = workload::findGpuKernel("matrixmul");
    if (!found.ok()) {
        state.SkipWithError(found.status().toString().c_str());
        return;
    }
    const auto &prof = *found.value();
    for (auto _ : state) {
        auto bundle = core::makeGpuConfig(core::GpuConfig::BaseCmos);
        workload::SyntheticKernel kernel(prof, 1, 0.05);
        gpu::Gpu gpu(bundle.sim);
        auto res = gpu.run(kernel);
        state.SetItemsProcessed(state.items_processed() +
                                res.issuedOps);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_GpuSimulation)->Unit(benchmark::kMillisecond);

void
BM_CpuSimThroughput(benchmark::State &state)
{
    // Simulated cycles per second with event-horizon skipping on
    // (Arg 0) vs. the per-cycle reference loop (Arg 1), on a
    // memory-bound app whose long DRAM stalls are the skip loop's
    // best case. The ratio of the two sim_cycles_per_sec counters is
    // the skip speedup reported in BENCH_simspeed.json.
    const bool no_skip = state.range(0) != 0;
    const auto found = workload::findCpuApp("canneal");
    if (!found.ok()) {
        state.SkipWithError(found.status().toString().c_str());
        return;
    }
    const auto &app = *found.value();
    uint64_t cycles = 0;
    for (auto _ : state) {
        auto bundle = core::makeCpuConfig(core::CpuConfig::BaseTfet);
        bundle.sim.skipEnabled = !no_skip;
        auto traces = workload::makeCpuWorkload(
            app, bundle.numCores, 1, 0.5);
        std::vector<cpu::TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        cpu::Multicore mc(bundle.sim, ptrs);
        auto res = mc.run();
        cycles += res.cycles;
        state.SetItemsProcessed(state.items_processed() +
                                res.committedOps);
        benchmark::DoNotOptimize(res.cycles);
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(static_cast<double>(cycles),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CpuSimThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_GpuSimThroughput(benchmark::State &state)
{
    // GPU twin of BM_CpuSimThroughput: a memory-heavy kernel on the
    // half-clock all-TFET GPU, skip (Arg 0) vs. reference (Arg 1).
    const bool no_skip = state.range(0) != 0;
    const auto found = workload::findGpuKernel("reduction");
    if (!found.ok()) {
        state.SkipWithError(found.status().toString().c_str());
        return;
    }
    const auto &prof = *found.value();
    uint64_t cycles = 0;
    for (auto _ : state) {
        auto bundle = core::makeGpuConfig(core::GpuConfig::BaseTfet);
        bundle.sim.skipEnabled = !no_skip;
        workload::SyntheticKernel kernel(prof, 1, 0.5);
        gpu::Gpu gpu(bundle.sim);
        auto res = gpu.run(kernel);
        cycles += res.cycles;
        state.SetItemsProcessed(state.items_processed() +
                                res.issuedOps);
        benchmark::DoNotOptimize(res.cycles);
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(static_cast<double>(cycles),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GpuSimThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
