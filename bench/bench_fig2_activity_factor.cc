/**
 * @file
 * Figure 2: total power of a Si-CMOS (dual-V_t) and a HetJTFET 32-bit
 * ALU as the activity factor drops, plus the ratio between them.
 *
 * Paper shape: the TFET ALU becomes relatively more attractive the
 * lower the activity; the ratio approaches the ~125x leakage gap.
 */

#include <cstdio>

#include "common/table.hh"
#include "device/activity.hh"

using namespace hetsim;

int
main()
{
    device::AluActivityModel model;
    TablePrinter t("Figure 2: 32-bit ALU power vs activity factor",
                   {"activity", "Si-CMOS (uW)", "HetJTFET (uW)",
                    "ratio"});
    for (const auto &p : device::sweepActivity(model, 10)) {
        char act[32];
        std::snprintf(act, sizeof(act), "1/%.0f", 1.0 / p.activity);
        t.addRow({p.activity == 1.0 ? "1" : act,
                  formatDouble(p.cmosPowerUw, 1),
                  formatDouble(p.tfetPowerUw, 2),
                  formatDouble(p.ratio, 1)});
    }
    t.print();
    t.writeCsv("fig2_activity_factor.csv");

    std::printf("\nzero-activity (pure leakage) ratio: %.0fx\n",
                model.leakageRatio());
    return 0;
}
