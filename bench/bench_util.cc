#include "bench/bench_util.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "workload/gpu_profiles.hh"

namespace hetsim::bench
{

core::ExperimentOptions
parseOptions(int argc, char **argv, double default_scale)
{
    core::ExperimentOptions opts;
    opts.scale = default_scale;
    if (argc > 1)
        opts.scale = std::atof(argv[1]);
    if (opts.scale <= 0.0) {
        // Bench harnesses are front ends: they may exit directly.
        std::fprintf(stderr, "error: scale must be positive, "
                     "got '%s'\n", argv[1]);
        std::exit(1);
    }
    const char *env = std::getenv("HETSIM_BENCH_SCALE");
    if (env && argc <= 1)
        opts.scale = std::atof(env);
    return opts;
}

const core::CpuOutcome &
CpuSuite::at(size_t cfg, size_t app) const
{
    return outcomes[cfg * apps.size() + app];
}

const core::CpuOutcome &
CpuSuite::baseline(size_t app) const
{
    return at(0, app);
}

CpuSuite
runCpuSuite(const std::vector<core::CpuConfig> &configs,
            const core::ExperimentOptions &opts)
{
    CpuSuite suite;
    suite.configs = configs;
    suite.apps = workload::cpuApps();
    suite.outcomes.reserve(configs.size() * suite.apps.size());
    for (core::CpuConfig cfg : configs) {
        std::fprintf(stderr, "  running %s...\n",
                     core::cpuConfigName(cfg));
        for (const workload::AppProfile &app : suite.apps)
            suite.outcomes.push_back(
                core::runCpuExperiment(cfg, app, opts));
    }
    return suite;
}

const core::GpuOutcome &
GpuSuite::at(size_t cfg, size_t kernel) const
{
    return outcomes[cfg * kernels.size() + kernel];
}

const core::GpuOutcome &
GpuSuite::baseline(size_t kernel) const
{
    return at(0, kernel);
}

GpuSuite
runGpuSuite(const std::vector<core::GpuConfig> &configs,
            const core::ExperimentOptions &opts)
{
    GpuSuite suite;
    suite.configs = configs;
    suite.kernels = workload::gpuKernels();
    suite.outcomes.reserve(configs.size() * suite.kernels.size());
    for (core::GpuConfig cfg : configs) {
        std::fprintf(stderr, "  running %s...\n",
                     core::gpuConfigName(cfg));
        for (const workload::KernelProfile &k : suite.kernels)
            suite.outcomes.push_back(
                core::runGpuExperiment(cfg, k, opts));
    }
    return suite;
}

void
printCpuFigure(const std::string &title, const CpuSuite &suite,
               const CpuMetricFn &metric, const std::string &csv_path)
{
    std::vector<std::string> columns = {"app"};
    for (core::CpuConfig cfg : suite.configs)
        columns.push_back(core::cpuConfigName(cfg));
    TablePrinter t(title, columns);

    std::vector<double> sums(suite.configs.size(), 0.0);
    for (size_t a = 0; a < suite.apps.size(); ++a) {
        std::vector<double> row;
        for (size_t c = 0; c < suite.configs.size(); ++c) {
            const double v = metric(suite.at(c, a),
                                    suite.baseline(a));
            row.push_back(v);
            sums[c] += v;
        }
        t.addRow(suite.apps[a].name, row);
    }
    std::vector<double> means;
    for (double s : sums)
        means.push_back(s / suite.apps.size());
    t.addRow("Average", means);
    t.print();
    if (!csv_path.empty() && !t.writeCsv(csv_path))
        warn("could not write %s", csv_path.c_str());
}

void
printGpuFigure(const std::string &title, const GpuSuite &suite,
               const GpuMetricFn &metric, const std::string &csv_path)
{
    std::vector<std::string> columns = {"kernel"};
    for (core::GpuConfig cfg : suite.configs)
        columns.push_back(core::gpuConfigName(cfg));
    TablePrinter t(title, columns);

    std::vector<double> sums(suite.configs.size(), 0.0);
    for (size_t k = 0; k < suite.kernels.size(); ++k) {
        std::vector<double> row;
        for (size_t c = 0; c < suite.configs.size(); ++c) {
            const double v = metric(suite.at(c, k),
                                    suite.baseline(k));
            row.push_back(v);
            sums[c] += v;
        }
        t.addRow(suite.kernels[k].name, row);
    }
    std::vector<double> means;
    for (double s : sums)
        means.push_back(s / suite.kernels.size());
    t.addRow("Average", means);
    t.print();
    if (!csv_path.empty() && !t.writeCsv(csv_path))
        warn("could not write %s", csv_path.c_str());
}

double
cpuNormTime(const core::CpuOutcome &r, const core::CpuOutcome &b)
{
    return r.metrics.seconds / b.metrics.seconds;
}

double
cpuNormEnergy(const core::CpuOutcome &r, const core::CpuOutcome &b)
{
    return r.metrics.energyJ / b.metrics.energyJ;
}

double
cpuNormEd(const core::CpuOutcome &r, const core::CpuOutcome &b)
{
    return r.metrics.edJs() / b.metrics.edJs();
}

double
cpuNormEd2(const core::CpuOutcome &r, const core::CpuOutcome &b)
{
    return r.metrics.ed2Js2() / b.metrics.ed2Js2();
}

double
gpuNormTime(const core::GpuOutcome &r, const core::GpuOutcome &b)
{
    return r.metrics.seconds / b.metrics.seconds;
}

double
gpuNormEnergy(const core::GpuOutcome &r, const core::GpuOutcome &b)
{
    return r.metrics.energyJ / b.metrics.energyJ;
}

double
gpuNormEd2(const core::GpuOutcome &r, const core::GpuOutcome &b)
{
    return r.metrics.ed2Js2() / b.metrics.ed2Js2();
}

} // namespace hetsim::bench
