/**
 * @file
 * GPU model inspection: per-unit energy breakdown and utilization for
 * one (configuration, kernel) pair.
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "core/configs.hh"
#include "gpu/gpu.hh"
#include "power/accountant.hh"
#include "workload/gpu_kernel_gen.hh"
#include "workload/gpu_profiles.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const char *kernel_name = argc > 1 ? argv[1] : "matrixmul";
    const std::string cfg_name = argc > 2 ? argv[2] : "BaseCMOS";
    const double scale = argc > 3 ? std::atof(argv[3]) : 1.0;

    core::GpuConfig cfg = core::GpuConfig::BaseCmos;
    for (int i = 0; i < core::kNumGpuConfigs; ++i) {
        const auto c = static_cast<core::GpuConfig>(i);
        if (cfg_name == core::gpuConfigName(c))
            cfg = c;
    }

    const auto found = workload::findGpuKernel(kernel_name);
    if (!found.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     found.status().toString().c_str());
        return 1;
    }
    const workload::KernelProfile &prof = *found.value();
    core::GpuConfigBundle bundle = makeGpuConfig(cfg);

    workload::SyntheticKernel kernel(prof, 1, scale);
    gpu::Gpu gpu(bundle.sim);
    gpu::GpuResult run = gpu.run(kernel);

    const power::EnergyBreakdown e = power::computeGpuEnergy(
        run.activity, bundle.units, run.seconds, bundle.numCus);

    std::printf("config=%s kernel=%s cus=%u freq=%.2fGHz\n",
                core::gpuConfigName(cfg), prof.name, bundle.numCus,
                bundle.freqGhz);
    std::printf("cycles=%llu ops=%llu ops/CU/cycle=%.3f "
                "time=%.3fms\n",
                static_cast<unsigned long long>(run.cycles),
                static_cast<unsigned long long>(run.issuedOps),
                static_cast<double>(run.issuedOps) / run.cycles /
                    bundle.numCus,
                run.seconds * 1e3);

    uint64_t rf_hits = 0, rf_misses = 0;
    for (uint32_t c = 0; c < gpu.numCus(); ++c) {
        rf_hits += gpu.cu(c).stats().value("rf_cache_read_hits");
        rf_misses += gpu.cu(c).stats().value("rf_cache_read_misses");
    }
    if (rf_hits + rf_misses > 0)
        std::printf("RF cache read hit rate=%.1f%%\n",
                    100.0 * rf_hits / (rf_hits + rf_misses));

    const double total = e.totalJ();
    TablePrinter t("Per-unit GPU energy (" + cfg_name + ", " +
                       kernel_name + ")",
                   {"unit", "dynamic(uJ)", "leakage(uJ)", "%total"});
    for (int i = 0; i < power::kNumGpuUnits; ++i) {
        const auto &up =
            power::gpuUnitPower(static_cast<power::GpuUnit>(i));
        t.addRow({up.name, formatDouble(e.dynamicJ[i] * 1e6, 2),
                  formatDouble(e.leakageJ[i] * 1e6, 2),
                  formatDouble(100.0 *
                                   (e.dynamicJ[i] + e.leakageJ[i]) /
                                   total, 1)});
    }
    t.addRow({"TOTAL", formatDouble(e.totalDynamicJ() * 1e6, 2),
              formatDouble(e.totalLeakageJ() * 1e6, 2), "100.0"});
    t.print();
    return 0;
}
