/**
 * @file
 * Design-space sweep: runs every Table IV CPU configuration on one
 * application and ranks them by ED^2 — the "which design should I
 * build?" view a downstream user wants from the library.
 *
 * Usage: design_space [app] [scale]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table.hh"
#include "core/experiment.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "fmm";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    const auto found = workload::findCpuApp(app_name);
    if (!found.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     found.status().toString().c_str());
        return 1;
    }
    const workload::AppProfile &app = *found.value();

    core::ExperimentOptions opts;
    opts.scale = scale;

    std::printf("Sweeping all CPU configurations on '%s'...\n",
                app.name);

    const core::CpuOutcome base = core::runCpuExperiment(
        core::CpuConfig::BaseCmos, app, opts);

    struct Row
    {
        std::string name;
        power::NormalizedMetrics norm;
        uint32_t cores;
    };
    std::vector<Row> rows;
    for (int i = 0; i < core::kNumCpuConfigs; ++i) {
        const auto cfg = static_cast<core::CpuConfig>(i);
        const core::CpuOutcome out =
            cfg == core::CpuConfig::BaseCmos
                ? base
                : core::runCpuExperiment(cfg, app, opts);
        rows.push_back({out.config,
                        power::normalize(out.metrics, base.metrics),
                        core::makeCpuConfig(cfg).numCores});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.norm.ed2 < b.norm.ed2;
              });

    TablePrinter t("Design space on " + std::string(app.name) +
                       " (normalized to BaseCMOS, best ED^2 first)",
                   {"config", "cores", "time", "energy", "ED",
                    "ED^2"});
    for (const Row &r : rows)
        t.addRow({r.name, std::to_string(r.cores),
                  formatDouble(r.norm.time),
                  formatDouble(r.norm.energy),
                  formatDouble(r.norm.ed),
                  formatDouble(r.norm.ed2)});
    t.print();

    std::printf("\nBest ED^2: %s.\n", rows.front().name.c_str());
    return 0;
}
