/**
 * @file
 * Design-space explorer: the "which hybrid design should I build?"
 * answer Table IV could only sample.
 *
 * Enumerates every free-form per-unit CMOS/TFET/high-V_t assignment
 * (a few hundred designs vs the paper's ~15), evaluates them on one
 * application over a thread pool with memoization, prints the Pareto
 * front over (time, energy, area), and then shows that a greedy
 * unit-flip hill-climb — the strategy for spaces too large to
 * enumerate — lands on a front design while visiting a fraction of
 * the space (and hitting the shared cache for every design the
 * exhaustive pass already simulated).
 *
 * Usage: dse_explorer [app] [scale] [jobs]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/area.hh"
#include "core/dse.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "fmm";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
    const unsigned jobs = argc > 3
        ? static_cast<unsigned>(std::atoi(argv[3]))
        : ThreadPool::defaultThreads();

    const auto found = workload::findCpuApp(app_name);
    if (!found.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     found.status().toString().c_str());
        return 1;
    }
    const workload::AppProfile &app = *found.value();

    core::DseOptions opts;
    opts.exp.scale = scale;
    opts.jobs = jobs;

    ThreadPool pool(jobs);
    core::DseCache cache;

    const auto designs = core::enumerateCpuDesigns();
    std::printf("Exploring %zu hybrid designs on '%s' with %u "
                "job(s)...\n",
                designs.size(), app.name, jobs);

    const auto points =
        core::evaluateCpuDesigns(designs, app, opts, pool, cache);
    const auto front = core::paretoFront(points,
                                         core::DseObjective::Ed2);

    TablePrinter t("Pareto front on " + std::string(app.name) +
                       " (best ED^2 first)",
                   {"design", "cores", "time (ms)", "energy (mJ)",
                    "area (mm^2)"});
    for (size_t idx : front) {
        const core::DsePoint &p = points[idx];
        t.addRow({p.name, std::to_string(p.cores),
                  formatDouble(p.seconds * 1e3, 4),
                  formatDouble(p.energyJ * 1e3, 4),
                  formatDouble(p.areaMm2, 2)});
    }
    t.print();
    std::printf("\n%zu of %zu designs are Pareto-optimal.\n",
                front.size(), points.size());

    // The AdvHet design the paper hand-crafted, located in the front.
    const uint64_t advhet = core::designHash(
        core::cpuHybridFromConfig(core::CpuConfig::AdvHet));
    for (size_t idx : front)
        if (points[idx].hash == advhet)
            std::printf("The paper's AdvHet is on the front: %s\n",
                        points[idx].name.c_str());

    // Greedy hill-climb over the same space: every point it visits
    // was already simulated above, so this costs only cache hits.
    const uint64_t misses_before = cache.misses();
    const auto climb = core::greedyCpuSearch(app, opts, pool, cache);
    std::printf("\nGreedy hill-climb visited %zu designs "
                "(%llu new simulations) and found: %s\n",
                climb.size(),
                static_cast<unsigned long long>(cache.misses() -
                                                misses_before),
                climb.empty() ? "-" : climb.front().name.c_str());
    return 0;
}
