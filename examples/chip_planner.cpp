/**
 * @file
 * Chip planner: automate the paper's headline construction.
 *
 * Given a workload and the power budget of a 4-core BaseCMOS chip,
 * size every HetCore design to that budget (the generalization of
 * AdvHet-2X) and rank the chips; then pick the ED^2-optimal DVFS
 * point for the winner.
 *
 * Usage: chip_planner [app] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "core/planner.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "streamcluster";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    const auto found = workload::findCpuApp(app_name);
    if (!found.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     found.status().toString().c_str());
        return 1;
    }
    const workload::AppProfile &app = *found.value();

    core::ExperimentOptions opts;
    opts.scale = scale;

    std::printf("Planning iso-power chips for '%s' against the "
                "4-core BaseCMOS budget...\n",
                app.name);

    const std::vector<core::CpuConfig> candidates = {
        core::CpuConfig::BaseCmos, core::CpuConfig::BaseTfet,
        core::CpuConfig::BaseHet,  core::CpuConfig::AdvHet,
    };
    const auto plans = core::planIsoPower(core::CpuConfig::BaseCmos,
                                          candidates, app, opts);

    TablePrinter t("Iso-power chips on " + std::string(app.name) +
                       " (best ED^2 first)",
                   {"config", "cores", "time (ms)", "energy (mJ)",
                    "power (W)", "ED^2 (J s^2)"});
    for (const auto &p : plans) {
        char ed2[32];
        std::snprintf(ed2, sizeof(ed2), "%.3e",
                      p.metrics.ed2Js2());
        t.addRow({p.config, std::to_string(p.cores),
                  formatDouble(p.metrics.seconds * 1e3, 3),
                  formatDouble(p.metrics.energyJ * 1e3, 3),
                  formatDouble(p.powerW, 2), ed2});
    }
    t.print();

    std::printf("\nBest chip: %s with %u cores. Now picking its "
                "ED^2-optimal frequency...\n",
                plans.front().config.c_str(), plans.front().cores);

    // Frequency selection for the winning single-chip design.
    const core::FreqPlan fp = core::chooseFrequency(
        core::CpuConfig::AdvHet, app, core::FreqObjective::MinEd2,
        0.0, opts);
    TablePrinter f("AdvHet DVFS sweep (MinED^2 objective)",
                   {"f (GHz)", "time (ms)", "energy (mJ)",
                    "ED^2 vs best"});
    for (const auto &p : fp.sweep)
        f.addRow({formatDouble(p.freqGhz, 2),
                  formatDouble(p.metrics.seconds * 1e3, 3),
                  formatDouble(p.metrics.energyJ * 1e3, 3),
                  formatDouble(p.metrics.ed2Js2() /
                                   fp.best.metrics.ed2Js2(), 3)});
    f.print();
    std::printf("\nED^2-optimal frequency: %.2f GHz\n",
                fp.best.freqGhz);
    return 0;
}
