/**
 * @file
 * Quickstart: compare the AdvHet hetero-device CPU against the
 * all-CMOS baseline on one application.
 *
 * Demonstrates the three-step public API:
 *   1. pick an application profile (workload::findCpuApp),
 *   2. run a configuration on it (core::runCpuExperiment),
 *   3. normalize and inspect metrics (power::normalize).
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"
#include "power/metrics.hh"
#include "workload/cpu_profiles.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "fft";
    const auto found = workload::findCpuApp(app_name);
    if (!found.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     found.status().toString().c_str());
        return 1;
    }
    const workload::AppProfile &app = *found.value();

    core::ExperimentOptions opts; // full-size run (a few seconds)

    std::printf("Simulating '%s' (%s suite) on 4 cores...\n",
                app.name, app.suite);

    const core::CpuOutcome base =
        runCpuExperiment(core::CpuConfig::BaseCmos, app, opts);
    const core::CpuOutcome adv =
        runCpuExperiment(core::CpuConfig::AdvHet, app, opts);

    const power::NormalizedMetrics n =
        power::normalize(adv.metrics, base.metrics);

    TablePrinter t("AdvHet vs BaseCMOS on " + std::string(app.name),
                   {"metric", "BaseCMOS", "AdvHet", "AdvHet/Base"});
    t.addRow({"cycles", std::to_string(base.cycles),
              std::to_string(adv.cycles), formatDouble(
                  static_cast<double>(adv.cycles) / base.cycles)});
    t.addRow({"time (ms)", formatDouble(base.metrics.seconds * 1e3),
              formatDouble(adv.metrics.seconds * 1e3),
              formatDouble(n.time)});
    t.addRow({"energy (mJ)", formatDouble(base.metrics.energyJ * 1e3),
              formatDouble(adv.metrics.energyJ * 1e3),
              formatDouble(n.energy)});
    t.addRow({"ED^2 (norm)", "1.000", formatDouble(n.ed2),
              formatDouble(n.ed2)});
    t.print();

    std::printf("\nAdvHet: %.1f%% %s, %.1f%% less energy than "
                "BaseCMOS.\n",
                100.0 * std::abs(n.time - 1.0),
                n.time >= 1.0 ? "slower" : "faster",
                100.0 * (1.0 - n.energy));
    return 0;
}
