/**
 * @file
 * DVFS explorer: walks the hetero-device voltage-pair space
 * (Section III-D) and reports, for each core frequency, the
 * (V_CMOS, V_TFET) pair, the per-domain energy scales, and the
 * simulated energy of an AdvHet chip on one application.
 *
 * Usage: dvfs_explorer [app] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "core/experiment.hh"
#include "device/vf_curve.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "water-nsq";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    const auto found = workload::findCpuApp(app_name);
    if (!found.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     found.status().toString().c_str());
        return 1;
    }
    const workload::AppProfile &app = *found.value();

    std::printf("DVFS exploration on '%s' (AdvHet, 4 cores)\n",
                app.name);

    TablePrinter t("Hetero-device DVFS operating points",
                   {"f (GHz)", "V_CMOS", "V_TFET", "cmos E-scale",
                    "tfet E-scale", "time (ms)", "energy (mJ)",
                    "ED^2 (norm)"});

    double ref_ed2 = 0.0;
    for (double f = 1.25; f <= 2.5 + 1e-9; f += 0.25) {
        const core::OperatingPoint op = core::cpuOperatingPoint(f);
        core::ExperimentOptions opts;
        opts.scale = scale;
        opts.freqGhz = f;
        const core::CpuOutcome out = core::runCpuExperiment(
            core::CpuConfig::AdvHet, app, opts);
        const double ed2 = out.metrics.ed2Js2();
        if (ref_ed2 == 0.0)
            ref_ed2 = ed2;
        t.addRow({formatDouble(f, 2), formatDouble(op.vCmos, 3),
                  formatDouble(op.vTfet, 3),
                  formatDouble(op.scales.cmosDynamic, 3),
                  formatDouble(op.scales.tfetDynamic, 3),
                  formatDouble(out.metrics.seconds * 1e3, 3),
                  formatDouble(out.metrics.energyJ * 1e3, 3),
                  formatDouble(ed2 / ref_ed2, 3)});
    }
    t.print();

    std::printf("\nNote: the TFET V-f curve saturates at %.2f GHz — "
                "beyond that the hetero-device core cannot keep its "
                "2:1 stage-work ratio.\n",
                device::tfetVfCurve().maxFreq());
    return 0;
}
