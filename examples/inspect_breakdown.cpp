/**
 * @file
 * Model inspection: per-unit energy breakdown and microarchitecture
 * rates for one (configuration, application) pair.
 *
 * Useful to understand where time and energy go before/after moving
 * units to TFET — the same analysis the paper's Figure 8 aggregates.
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "core/configs.hh"
#include "core/dvfs.hh"
#include "cpu/multicore.hh"
#include "power/accountant.hh"
#include "workload/cpu_profiles.hh"
#include "workload/cpu_trace_gen.hh"

using namespace hetsim;

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "fft";
    const std::string cfg_name = argc > 2 ? argv[2] : "BaseCMOS";
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.5;
    const bool dump_stats =
        argc > 4 && std::string(argv[4]) == "stats";

    core::CpuConfig cfg = core::CpuConfig::BaseCmos;
    for (int i = 0; i < core::kNumCpuConfigs; ++i) {
        const auto c = static_cast<core::CpuConfig>(i);
        if (cfg_name == core::cpuConfigName(c))
            cfg = c;
    }

    const auto found = workload::findCpuApp(app_name);
    if (!found.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     found.status().toString().c_str());
        return 1;
    }
    const workload::AppProfile &app = *found.value();
    core::CpuConfigBundle bundle = makeCpuConfig(cfg);

    auto traces = workload::makeCpuWorkload(app, bundle.numCores, 1,
                                            scale);
    std::vector<cpu::TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());

    cpu::Multicore mc(bundle.sim, ptrs);
    cpu::MulticoreResult run = mc.run();

    power::CpuActivity activity = run.activity;
    if (bundle.sim.core.fu.dualSpeedAlu) {
        uint64_t fast = 0;
        for (uint32_t c = 0; c < mc.numCores(); ++c)
            fast += mc.core(c).fuPool().stats().value("fast_alu_ops");
        activity[static_cast<int>(power::CpuUnit::Alu)] -= fast;
        activity[static_cast<int>(power::CpuUnit::AluFast)] += fast;
    }

    const power::EnergyBreakdown e = power::computeCpuEnergy(
        activity, bundle.units, run.seconds, bundle.numCores);

    // --- Microarchitecture rates ---------------------------------
    std::printf("config=%s app=%s cores=%u freq=%.2fGHz\n",
                core::cpuConfigName(cfg), app.name, bundle.numCores,
                bundle.freqGhz);
    std::printf("cycles=%llu ops=%llu IPC/core=%.2f time=%.3fms\n",
                static_cast<unsigned long long>(run.cycles),
                static_cast<unsigned long long>(run.committedOps),
                static_cast<double>(run.committedOps) / run.cycles /
                    bundle.numCores,
                run.seconds * 1e3);

    uint64_t br_lookups = 0, br_misp = 0;
    for (uint32_t c = 0; c < mc.numCores(); ++c) {
        const auto &bs = mc.core(c).branchPredictor().stats();
        br_lookups += bs.value("lookups");
        br_misp += bs.value("mispredictions");
    }
    std::printf("branch mispredict rate=%.2f%% (MPKI=%.1f)\n",
                100.0 * br_misp / std::max<uint64_t>(br_lookups, 1),
                1000.0 * br_misp /
                    std::max<uint64_t>(run.committedOps, 1));

    auto &h = mc.hierarchy();
    uint64_t d_acc = 0, d_hit = 0, d_fast = 0, l2_acc = 0, l2_hit = 0;
    for (uint32_t c = 0; c < mc.numCores(); ++c) {
        d_acc += h.dl1(c).stats().value("accesses");
        d_hit += h.dl1(c).stats().value("hits");
        d_fast += h.dl1(c).stats().value("fast_hits");
        l2_acc += h.l2(c).stats().value("accesses");
        l2_hit += h.l2(c).stats().value("hits");
    }
    const auto &l3s = h.l3().stats();
    std::printf("DL1 hit=%.1f%% (fast=%.1f%%)  L2 hit=%.1f%%  "
                "L3 hit=%.1f%%  DRAM reads=%llu\n",
                100.0 * d_hit / std::max<uint64_t>(d_acc, 1),
                100.0 * d_fast / std::max<uint64_t>(d_acc, 1),
                100.0 * l2_hit / std::max<uint64_t>(l2_acc, 1),
                100.0 * l3s.value("hits") /
                    std::max<uint64_t>(l3s.value("accesses"), 1),
                static_cast<unsigned long long>(
                    h.dram().stats().value("reads")));

    // --- Energy breakdown ----------------------------------------
    const double total = e.totalJ();
    TablePrinter t("Per-unit energy breakdown (" + cfg_name + ", " +
                       app_name + ")",
                   {"unit", "dynamic(uJ)", "leakage(uJ)", "%total"});
    for (int i = 0; i < power::kNumCpuUnits; ++i) {
        const auto &up =
            power::cpuUnitPower(static_cast<power::CpuUnit>(i));
        t.addRow({up.name, formatDouble(e.dynamicJ[i] * 1e6, 2),
                  formatDouble(e.leakageJ[i] * 1e6, 2),
                  formatDouble(100.0 *
                                   (e.dynamicJ[i] + e.leakageJ[i]) /
                                   total, 1)});
    }
    t.addRow({"TOTAL", formatDouble(e.totalDynamicJ() * 1e6, 2),
              formatDouble(e.totalLeakageJ() * 1e6, 2), "100.0"});
    t.print();

    auto dyn = [&](power::CpuUnit u) {
        return e.dynamicJ[static_cast<int>(u)];
    };
    auto leak = [&](power::CpuUnit u) {
        return e.leakageJ[static_cast<int>(u)];
    };
    using power::CpuUnit;
    const double conv_dyn = dyn(CpuUnit::Alu) + dyn(CpuUnit::MulDiv) +
        dyn(CpuUnit::Fpu) + dyn(CpuUnit::Dl1) + dyn(CpuUnit::L2) +
        dyn(CpuUnit::L3);
    const double conv_leak = leak(CpuUnit::Alu) +
        leak(CpuUnit::MulDiv) + leak(CpuUnit::Fpu) +
        leak(CpuUnit::Dl1) + leak(CpuUnit::L2) + leak(CpuUnit::L3);
    std::printf("\nleakage share=%.1f%%  converted-unit dynamic "
                "fraction=%.1f%%  converted-unit leakage "
                "fraction=%.1f%%\n",
                100.0 * e.totalLeakageJ() / total,
                100.0 * conv_dyn / e.totalDynamicJ(),
                100.0 * conv_leak / e.totalLeakageJ());

    if (dump_stats) {
        std::printf("\n-- raw simulator statistics --\n");
        for (uint32_t c = 0; c < mc.numCores(); ++c) {
            mc.core(c).stats().dump();
            mc.core(c).branchPredictor().stats().dump();
            mc.core(c).fuPool().stats().dump();
            h.dl1(c).stats().dump();
            h.l2(c).stats().dump();
        }
        h.l3().stats().dump();
        h.dram().stats().dump();
        h.ring().stats().dump();
        h.stats().dump();
    }
    return 0;
}
