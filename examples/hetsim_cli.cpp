/**
 * @file
 * hetsim_cli — the command-line front end to the library.
 *
 *   hetsim_cli list
 *       Print every configuration, application, and GPU kernel.
 *   hetsim_cli run --config AdvHet --app fft [--scale S] [--freq F]
 *                  [--cores N] [--seed K] [--no-skip 1]
 *                  [--csv out.csv] [--report-json report.json]
 *                  [--trace-out t.json] [--trace-capacity N]
 *                  [--checkpoint ck.hckp] [--checkpoint-every N]
 *       Simulate one CPU experiment and print its metrics.
 *       --checkpoint enables checkpoint/restore: the run saves a
 *       verified, atomically-rotated checkpoint every N cycles
 *       (--checkpoint-every; 0 = only on SIGTERM), drains to one on
 *       SIGTERM (exit 3), auto-resumes when the file exists, and
 *       removes it on completion. A run killed at any point and
 *       re-invoked identically produces byte-identical --report-json
 *       output to an uninterrupted run with the same flags.
 *       --no-skip 1 disables event-horizon cycle skipping (the
 *       slower reference path; reports are byte-identical either
 *       way — run/gpu/sweep/dse all accept it).
 *       --report-json writes the machine-readable RunReport (every
 *       stat counter and distribution, per-unit energy, config
 *       identity); two identical runs produce byte-identical files.
 *       --trace-out records the last N (default 65536) pipeline and
 *       cache events into a chrome://tracing JSON.
 *   hetsim_cli gpu --config AdvHet --kernel matrixmul [--scale S]
 *                  [--report-json report.json] [--trace-out t.json]
 *       Simulate one GPU experiment (trace records wavefront issue).
 *   hetsim_cli record --app fft [--thread T] [--threads N]
 *                     [--scale S] [--max M] --out trace.bin
 *       Record a synthetic trace to a binary file.
 *   hetsim_cli replay --trace trace.bin [--config BaseCMOS]
 *       Replay a recorded trace through a single core.
 *   hetsim_cli sweep [--configs all|A,B] [--workloads w1,w2]
 *                    [--scale S] [--seed K] [--freq F]
 *                    [--jobs N] [--timeout-ms T]
 *                    [--watchdog-cycles N]
 *                    [--no-isolate 1] [--csv out.csv]
 *                    [--store DIR] [--resume 1] [--retries N]
 *                    [--retry-backoff-ms B]
 *       Run a batch (config x workload) sweep; each cell executes in
 *       an isolated child process with watchdogs, so corrupt traces,
 *       crashes, and runaway cells are recorded per cell while the
 *       rest of the sweep completes. --jobs N keeps up to N cells in
 *       flight at once (results stay in plan order, so the report is
 *       byte-identical to a serial run). Workload specs: "fft",
 *       "app:fft@scale=2", "trace:file.bin", "kernel:dct" (kernel
 *       cells use GPU configs named via --gpu-configs).
 *       --report-json writes the deterministic per-cell JSON report.
 *       --store DIR journals each cell's terminal outcome into a
 *       checksummed on-disk result store as it completes; --resume 1
 *       replays journaled cells instead of re-executing them, so a
 *       killed sweep restarted with the same flags re-runs only the
 *       missing cells and produces a byte-identical --report-json.
 *       --retries N re-runs transient failures (worker crashes,
 *       wall-clock kills) up to N times with exponential backoff
 *       (deterministically jittered per cell).
 *       --checkpoint-every N (needs --store) adds mid-run cell
 *       checkpoints in the store directory: SIGTERM drains the
 *       in-flight cell to a checkpoint and stops (exit 3), and
 *       --resume 1 then continues that cell mid-run.
 *       Exits 0 as long as the sweep itself ran; per-cell failures
 *       are reported in the summary, not via the exit code.
 *   hetsim_cli dse [--space cpu|gpu] [--app fft | --kernel matrixmul]
 *                  [--objective ed2|energy|time]
 *                  [--strategy exhaustive|greedy] [--jobs N]
 *                  [--budget-mm2 X] [--scale S] [--seed K] [--freq F]
 *                  [--repeat R] [--csv out.csv]
 *       Explore the free-form hybrid-design space (per-unit
 *       CMOS/TFET/high-V_t choices beyond Table IV) on one workload,
 *       fanning cells out over --jobs threads with a memoization
 *       cache, and report the Pareto front over (time, energy, area).
 *       Output is identical for any --jobs value; --repeat R > 1
 *       re-runs the search to demonstrate the cache (every repeated
 *       cell is a hit, not a re-simulation). --report-json writes the
 *       evaluated points as JSON, byte-identical for any --jobs.
 *       --store DIR adds a durable second cache tier: memo misses
 *       consult the on-disk store before simulating, so a repeated
 *       exploration in a new process is warm.
 *   hetsim_cli serve --socket /tmp/hetsim.sock [--store DIR]
 *                    [--jobs N] [--timeout-ms T]
 *                    [--watchdog-cycles N] [--retries R]
 *                    [--retry-backoff-ms B] [--report-json out.json]
 *       Resident batch daemon: accepts length-prefixed flat-JSON
 *       run/gpu/sweep/dse jobs over a unix socket (higher "priority"
 *       fields run first), executes every cell through the
 *       fork-isolated sweep runner with the shared result store, and
 *       drains gracefully on SIGTERM/SIGINT — answering every queued
 *       job, then writing its lifetime counters (jobs, store
 *       hits/misses/quarantines, retries) as a RunReport.
 *       --checkpoint-every N (needs --store) lets the drain signal
 *       preempt the in-flight cell at its next checkpoint instead of
 *       running it to completion; re-submitting the job after a
 *       restart resumes the cell from its journaled checkpoint.
 *   hetsim_cli store fsck --dir DIR
 *   hetsim_cli store gc --dir DIR
 *       Offline store maintenance: verify every .hres entry exactly
 *       as get() would (quarantining corrupt ones), verify every
 *       .hckp / .prev checkpoint's header and checksums report-only
 *       (live resumable state is never renamed or removed), and
 *       report quarantined files and orphaned atomic-write temp
 *       files. fsck only reports (exit 1 while problem files
 *       remain); gc additionally deletes quarantined files and
 *       orphan temps (never live entries or checkpoints).
 *   hetsim_cli submit --socket /tmp/hetsim.sock
 *                     --request '{"cmd":"run","config":"AdvHet",
 *                     "workload":"fft","scale":0.05}'
 *                     [--timeout-ms T]
 *       Send one job to a serve daemon and print the JSON response
 *       (exit 0 when the response says ok, 2 when it reports an
 *       error). Connect retries until the deadline, so a submit
 *       racing a freshly spawned server just works.
 *
 *   run and gpu also accept --store DIR: the full RunReport is
 *   memoized durably, and an identical re-invocation prints the same
 *   table and writes byte-identical --report-json output without
 *   re-simulating (bypassed when --trace-out is requested).
 *
 * The library reports input errors as Status values; this front end
 * is where they become messages and a nonzero process exit.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/file.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/dse.hh"
#include "core/experiment.hh"
#include "core/result_store.hh"
#include "core/server.hh"
#include "core/sweep.hh"
#include "cpu/multicore.hh"
#include "workload/cpu_trace_gen.hh"
#include "workload/trace_file.hh"

using namespace hetsim;

namespace
{

/** CLI-layer fatal: print and exit(1). Library code returns Status
 *  instead; only the front end may terminate the process. */
[[noreturn]] void
die(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void
vdie(const char *fmt, va_list ap)
{
    std::fprintf(stderr, "error: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

[[noreturn]] void
die(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vdie(fmt, ap);
    va_end(ap);
    std::abort(); // Unreachable; vdie exits.
}

[[noreturn]] void
dieOn(const Status &status)
{
    die("%s", status.toString().c_str());
}

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i + 1 < argc; i += 2) {
            if (std::strncmp(argv[i], "--", 2) != 0)
                die("expected --option, got '%s'", argv[i]);
            kv_[argv[i] + 2] = argv[i + 1];
        }
    }

    std::string
    get(const std::string &key, const std::string &dflt = "") const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? dflt : it->second;
    }

    double
    getD(const std::string &key, double dflt) const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? dflt : std::atof(it->second.c_str());
    }

    uint64_t
    getU(const std::string &key, uint64_t dflt) const
    {
        auto it = kv_.find(key);
        return it == kv_.end()
            ? dflt
            : std::strtoull(it->second.c_str(), nullptr, 10);
    }

  private:
    std::map<std::string, std::string> kv_;
};

core::CpuConfig
cpuConfigByName(const std::string &name)
{
    Result<core::CpuConfig> r = core::cpuConfigFromName(name);
    if (!r.ok())
        dieOn(r.status());
    return r.value();
}

core::GpuConfig
gpuConfigByName(const std::string &name)
{
    Result<core::GpuConfig> r = core::gpuConfigFromName(name);
    if (!r.ok())
        dieOn(r.status());
    return r.value();
}

std::vector<std::string>
splitCsvList(const std::string &list)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > start)
            out.push_back(list.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** Preemption flag shared by the SIGTERM handler and checkpointed
 *  commands; forked sweep children inherit the handler, so a signal
 *  to the process group preempts the in-flight cell too. */
volatile sig_atomic_t g_preempt = 0;

extern "C" void
onPreemptSignal(int)
{
    g_preempt = 1;
}

void
installPreemptHandler()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onPreemptSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
}

/** Exit code of a run stopped at a preemption checkpoint (1 is a
 *  plain error, 2 a submit error-response). */
constexpr int kExitPreempted = 3;

int
cmdList()
{
    std::printf("CPU configurations:\n ");
    for (int i = 0; i < core::kNumCpuConfigs; ++i)
        std::printf(" %s", core::cpuConfigName(
                               static_cast<core::CpuConfig>(i)));
    std::printf("\nGPU configurations:\n ");
    for (int i = 0; i < core::kNumGpuConfigs; ++i)
        std::printf(" %s", core::gpuConfigName(
                               static_cast<core::GpuConfig>(i)));
    std::printf("\nCPU applications:\n ");
    for (const auto &app : workload::cpuApps())
        std::printf(" %s", app.name);
    std::printf("\nGPU kernels:\n ");
    for (const auto &k : workload::gpuKernels())
        std::printf(" %s", k.name);
    std::printf("\n");
    return 0;
}

/** Open the --store directory when given; dies on open failure. */
std::optional<core::ResultStore>
openStoreArg(const Args &args)
{
    const std::string dir = args.get("store");
    if (dir.empty())
        return std::nullopt;
    Result<core::ResultStore> store = core::ResultStore::open(dir);
    if (!store.ok())
        dieOn(store.status());
    return std::optional<core::ResultStore>(std::move(store.value()));
}

/** Store key of one run/gpu invocation: command identity plus every
 *  ExperimentOptions field that feeds the result. */
std::string
runStoreKey(const char *kind, const std::string &config,
            const std::string &workload,
            const core::ExperimentOptions &opts)
{
    // The checkpoint cadence participates: drains pause fetch, so
    // runs with different cadences report different cycle counts.
    char buf[176];
    std::snprintf(buf, sizeof(buf),
                  "|s%llu|x%.9g|f%.9g|c%u|w%llu|k%d|g%d|e%llu",
                  static_cast<unsigned long long>(opts.seed),
                  opts.scale, opts.freqGhz, opts.coresOverride,
                  static_cast<unsigned long long>(
                      opts.watchdogCycles),
                  opts.noSkip ? 1 : 0,
                  opts.variationGuardband ? 1 : 0,
                  static_cast<unsigned long long>(
                      opts.checkpointEveryCycles));
    return std::string("run-report-v1|") + kind + "|" + config +
           "|" + workload + buf;
}

/** Durable memo of one run/gpu invocation: the table scalars plus
 *  the full RunReport document, so a warm hit reproduces both the
 *  printed table and byte-identical --report-json output. */
struct RunMemo
{
    uint64_t cycles = 0;
    uint64_t ops = 0;
    double seconds = 0.0;
    double energyJ = 0.0;
    std::string reportJson;
};

struct [[gnu::packed]] RunMemoHead
{
    uint64_t cycles;
    uint64_t ops;
    double seconds;
    double energyJ;
    uint32_t reportLen;
};

std::string
encodeRunMemo(const RunMemo &memo)
{
    const RunMemoHead head = {
        memo.cycles, memo.ops, memo.seconds, memo.energyJ,
        static_cast<uint32_t>(memo.reportJson.size())};
    std::string out(reinterpret_cast<const char *>(&head),
                    sizeof(head));
    out += memo.reportJson;
    return out;
}

bool
decodeRunMemo(const std::string &payload, RunMemo *out)
{
    RunMemoHead head;
    if (payload.size() < sizeof(head))
        return false;
    std::memcpy(&head, payload.data(), sizeof(head));
    if (payload.size() != sizeof(head) + head.reportLen)
        return false;
    out->cycles = head.cycles;
    out->ops = head.ops;
    out->seconds = head.seconds;
    out->energyJ = head.energyJ;
    out->reportJson = payload.substr(sizeof(head));
    return true;
}

/** Write pre-serialized report bytes verbatim (the warm-hit path
 *  must reproduce the cold run's file exactly). */
void
writeReportBytes(const std::string &path, const std::string &bytes)
{
    Result<FileHandle> file = openFile(path, "wb");
    if (!file.ok())
        dieOn(file.status());
    if (std::fwrite(bytes.data(), 1, bytes.size(),
                    file.value().get()) != bytes.size())
        dieOn(ioError("write failed", path));
    std::printf("report: %s\n", path.c_str());
}

/** Write the --report-json / --trace-out artifacts of one run. */
void
writeRunArtifacts(const Args &args, obs::RunReport &report,
                  const obs::TraceBuffer &trace)
{
    const std::string report_path = args.get("report-json");
    if (!report_path.empty()) {
        const Status s = report.writeJson(report_path);
        if (!s.ok())
            dieOn(s);
        std::printf("report: %s\n", report_path.c_str());
    }
    const std::string trace_path = args.get("trace-out");
    if (!trace_path.empty()) {
        const Status s = obs::writeChromeTrace(trace, trace_path);
        if (!s.ok())
            dieOn(s);
        std::printf("trace: %s (%llu events kept, %llu dropped)\n",
                    trace_path.c_str(),
                    static_cast<unsigned long long>(trace.size()),
                    static_cast<unsigned long long>(trace.dropped()));
    }
}

int
cmdRun(const Args &args)
{
    const auto cfg = cpuConfigByName(args.get("config", "BaseCMOS"));
    const auto app = workload::findCpuApp(args.get("app", "fft"));
    if (!app.ok())
        dieOn(app.status());
    core::ExperimentOptions opts;
    opts.scale = args.getD("scale", 1.0);
    opts.freqGhz = args.getD("freq", 2.0);
    opts.seed = args.getU("seed", 1);
    opts.coresOverride =
        static_cast<uint32_t>(args.getU("cores", 0));
    opts.noSkip = args.getU("no-skip", 0) != 0;
    opts.checkpointPath = args.get("checkpoint");
    opts.checkpointEveryCycles = args.getU("checkpoint-every", 0);
    if (opts.checkpointPath.empty() &&
        opts.checkpointEveryCycles > 0)
        die("--checkpoint-every needs --checkpoint <path>");
    if (!opts.checkpointPath.empty()) {
        installPreemptHandler();
        opts.preempt = &g_preempt;
    }

    obs::RunReport report;
    obs::TraceBuffer trace(
        static_cast<size_t>(args.getU("trace-capacity", 65536)));
    const std::string report_path = args.get("report-json");
    const bool want_trace = !args.get("trace-out").empty();

    std::optional<core::ResultStore> store = openStoreArg(args);
    const std::string key = store
        ? runStoreKey("cpu", core::cpuConfigName(cfg),
                      app.value()->name, opts)
        : "";

    RunMemo memo;
    bool from_store = false;
    // Tracing records live pipeline events, so a traced run always
    // executes; it still journals its result below.
    if (store && !want_trace) {
        if (Result<std::string> hit = store->get(key); hit.ok())
            from_store = decodeRunMemo(hit.value(), &memo);
    }

    if (!from_store) {
        // Fill the report whenever it is journaled, not only when
        // --report-json asked for it: a later warm hit needs it.
        const bool want_report = !report_path.empty() || store;
        const core::CpuOutcome out = core::runCpuExperiment(
            cfg, *app.value(), opts, want_report ? &report : nullptr,
            want_trace ? &trace : nullptr);
        if (out.preempted) {
            std::printf("preempted at cycle %llu: checkpoint saved "
                        "to %s; rerun the same command to resume\n",
                        static_cast<unsigned long long>(out.cycles),
                        opts.checkpointPath.c_str());
            return kExitPreempted;
        }
        report.designHash =
            core::designHash(core::cpuHybridFromConfig(cfg));
        memo.cycles = out.cycles;
        memo.ops = out.committedOps;
        memo.seconds = out.metrics.seconds;
        memo.energyJ = out.metrics.energyJ;
        if (want_report)
            memo.reportJson = report.toJson();
        if (store) {
            if (Status s = store->put(key, encodeRunMemo(memo));
                !s.ok())
                warn("run: store put failed: %s",
                     s.toString().c_str());
        }
    }

    const double power_w =
        memo.seconds > 0.0 ? memo.energyJ / memo.seconds : 0.0;
    TablePrinter t("hetsim run: " +
                       std::string(core::cpuConfigName(cfg)) + " / " +
                       app.value()->name,
                   {"metric", "value"});
    t.addRow({"cycles", std::to_string(memo.cycles)});
    t.addRow({"committed ops", std::to_string(memo.ops)});
    t.addRow({"time (ms)", formatDouble(memo.seconds * 1e3, 4)});
    t.addRow({"energy (mJ)", formatDouble(memo.energyJ * 1e3, 4)});
    t.addRow({"power (W)", formatDouble(power_w, 3)});
    char ed2[32];
    std::snprintf(ed2, sizeof(ed2), "%.3e",
                  memo.energyJ * memo.seconds * memo.seconds);
    t.addRow({"ED^2 (J s^2)", ed2});
    t.print();
    if (from_store) {
        std::printf("store: verified hit (%s)\n",
                    store->entryPath(key).c_str());
        if (!report_path.empty())
            writeReportBytes(report_path, memo.reportJson);
    } else {
        writeRunArtifacts(args, report, trace);
    }
    const std::string csv = args.get("csv");
    if (!csv.empty() && !t.writeCsv(csv))
        die("cannot write '%s'", csv.c_str());
    return 0;
}

int
cmdGpu(const Args &args)
{
    const auto cfg = gpuConfigByName(args.get("config", "BaseCMOS"));
    const auto kernel =
        workload::findGpuKernel(args.get("kernel", "matrixmul"));
    if (!kernel.ok())
        dieOn(kernel.status());
    core::ExperimentOptions opts;
    opts.scale = args.getD("scale", 1.0);
    opts.seed = args.getU("seed", 1);
    opts.noSkip = args.getU("no-skip", 0) != 0;
    opts.checkpointPath = args.get("checkpoint");
    opts.checkpointEveryCycles = args.getU("checkpoint-every", 0);
    if (opts.checkpointPath.empty() &&
        opts.checkpointEveryCycles > 0)
        die("--checkpoint-every needs --checkpoint <path>");
    if (!opts.checkpointPath.empty()) {
        installPreemptHandler();
        opts.preempt = &g_preempt;
    }

    obs::RunReport report;
    obs::TraceBuffer trace(
        static_cast<size_t>(args.getU("trace-capacity", 65536)));
    const std::string report_path = args.get("report-json");
    const bool want_trace = !args.get("trace-out").empty();

    std::optional<core::ResultStore> store = openStoreArg(args);
    const std::string key = store
        ? runStoreKey("gpu", core::gpuConfigName(cfg),
                      kernel.value()->name, opts)
        : "";

    RunMemo memo;
    bool from_store = false;
    if (store && !want_trace) {
        if (Result<std::string> hit = store->get(key); hit.ok())
            from_store = decodeRunMemo(hit.value(), &memo);
    }

    if (!from_store) {
        const bool want_report = !report_path.empty() || store;
        const core::GpuOutcome out = core::runGpuExperiment(
            cfg, *kernel.value(), opts,
            want_report ? &report : nullptr,
            want_trace ? &trace : nullptr);
        if (out.preempted) {
            std::printf("preempted at cycle %llu: checkpoint saved "
                        "to %s; rerun the same command to resume\n",
                        static_cast<unsigned long long>(out.cycles),
                        opts.checkpointPath.c_str());
            return kExitPreempted;
        }
        report.designHash =
            core::designHash(core::gpuHybridFromConfig(cfg));
        memo.cycles = out.cycles;
        memo.ops = out.issuedOps;
        memo.seconds = out.metrics.seconds;
        memo.energyJ = out.metrics.energyJ;
        if (want_report)
            memo.reportJson = report.toJson();
        if (store) {
            if (Status s = store->put(key, encodeRunMemo(memo));
                !s.ok())
                warn("gpu: store put failed: %s",
                     s.toString().c_str());
        }
    }

    const double power_w =
        memo.seconds > 0.0 ? memo.energyJ / memo.seconds : 0.0;
    TablePrinter t("hetsim gpu: " +
                       std::string(core::gpuConfigName(cfg)) + " / " +
                       kernel.value()->name,
                   {"metric", "value"});
    t.addRow({"cycles", std::to_string(memo.cycles)});
    t.addRow({"issued ops", std::to_string(memo.ops)});
    t.addRow({"time (ms)", formatDouble(memo.seconds * 1e3, 4)});
    t.addRow({"energy (mJ)", formatDouble(memo.energyJ * 1e3, 4)});
    t.addRow({"power (W)", formatDouble(power_w, 3)});
    t.print();
    if (from_store) {
        std::printf("store: verified hit (%s)\n",
                    store->entryPath(key).c_str());
        if (!report_path.empty())
            writeReportBytes(report_path, memo.reportJson);
    } else {
        writeRunArtifacts(args, report, trace);
    }
    return 0;
}

int
cmdRecord(const Args &args)
{
    const auto app = workload::findCpuApp(args.get("app", "fft"));
    if (!app.ok())
        dieOn(app.status());
    const std::string out_path = args.get("out");
    if (out_path.empty())
        die("record needs --out <file>");
    const uint32_t threads =
        static_cast<uint32_t>(args.getU("threads", 4));
    const uint32_t thread =
        static_cast<uint32_t>(args.getU("thread", 0));
    workload::SyntheticCpuTrace src(*app.value(), thread, threads,
                                    args.getU("seed", 1),
                                    args.getD("scale", 1.0));
    const Result<uint64_t> n = workload::recordTrace(
        src, out_path, args.getU("max", ~0ull));
    if (!n.ok())
        dieOn(n.status());
    std::printf("recorded %llu ops of %s (thread %u/%u) to %s\n",
                static_cast<unsigned long long>(n.value()),
                app.value()->name, thread, threads,
                out_path.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    const std::string path = args.get("trace");
    if (path.empty())
        die("replay needs --trace <file>");
    const auto cfg = cpuConfigByName(args.get("config", "BaseCMOS"));
    const core::CpuConfigBundle bundle = core::makeCpuConfig(cfg);

    auto trace = workload::FileTrace::open(path);
    if (!trace.ok())
        dieOn(trace.status());
    cpu::MulticoreParams sim = bundle.sim;
    sim.mem.numCores = 1;
    cpu::Multicore mc(sim, {trace.value().get()});
    const cpu::MulticoreResult run = mc.run();
    if (!trace.value()->status().ok())
        dieOn(trace.value()->status());
    std::printf("replayed %llu ops from %s on one %s core: "
                "%llu cycles (%.4f ms, IPC %.2f)\n",
                static_cast<unsigned long long>(run.committedOps),
                path.c_str(), core::cpuConfigName(cfg),
                static_cast<unsigned long long>(run.cycles),
                run.seconds * 1e3,
                static_cast<double>(run.committedOps) / run.cycles);
    return 0;
}

int
cmdSweep(const Args &args)
{
    // Configurations: every CPU config by default.
    std::vector<core::CpuConfig> cfgs;
    const std::string cfg_list = args.get("configs", "all");
    if (cfg_list == "all") {
        for (int i = 0; i < core::kNumCpuConfigs; ++i)
            cfgs.push_back(static_cast<core::CpuConfig>(i));
    } else {
        for (const std::string &name : splitCsvList(cfg_list))
            cfgs.push_back(cpuConfigByName(name));
    }

    // Workload specs crossed with the CPU configs.
    std::vector<std::string> specs =
        splitCsvList(args.get("workloads", ""));
    std::vector<core::SweepCell> cells;
    if (!specs.empty()) {
        auto crossed = core::crossCpuCells(cfgs, specs);
        if (!crossed.ok())
            dieOn(crossed.status());
        cells = std::move(crossed.value());
    }

    // GPU cells: every named GPU config x every kernel spec.
    const auto gpu_cfg_list =
        splitCsvList(args.get("gpu-configs", ""));
    const auto kernel_list = splitCsvList(args.get("kernels", ""));
    for (const std::string &name : gpu_cfg_list) {
        const core::GpuConfig gcfg = gpuConfigByName(name);
        for (const std::string &k : kernel_list)
            cells.push_back(core::gpuKernelCell(gcfg, k));
    }

    // Individually added cells: "Config/spec" entries.
    for (const std::string &entry :
         splitCsvList(args.get("cells", ""))) {
        const size_t slash = entry.find('/');
        if (slash == std::string::npos)
            die("bad --cells entry '%s' (expected Config/workload)",
                entry.c_str());
        auto cell =
            core::parseWorkloadSpec(entry.substr(slash + 1));
        if (!cell.ok())
            dieOn(cell.status());
        if (cell.value().kind == core::SweepCell::Kind::GpuKernel)
            cell.value().gpuCfg =
                gpuConfigByName(entry.substr(0, slash));
        else
            cell.value().cpuCfg =
                cpuConfigByName(entry.substr(0, slash));
        cells.push_back(std::move(cell.value()));
    }

    if (cells.empty())
        die("sweep needs --workloads, --kernels, or --cells");

    core::SweepOptions opts;
    opts.exp.scale = args.getD("scale", 1.0);
    opts.exp.freqGhz = args.getD("freq", 2.0);
    opts.exp.seed = args.getU("seed", 1);
    opts.exp.watchdogCycles = args.getU("watchdog-cycles", 0);
    opts.exp.noSkip = args.getU("no-skip", 0) != 0;
    opts.wallLimitMs = args.getD("timeout-ms", 0.0);
    opts.isolate = args.getU("no-isolate", 0) == 0;
    opts.jobs = static_cast<unsigned>(args.getU("jobs", 1));
    opts.verbose = true;

    std::optional<core::ResultStore> store = openStoreArg(args);
    opts.store = store ? &*store : nullptr;
    opts.resume = args.getU("resume", 0) != 0;
    opts.maxRetries =
        static_cast<uint32_t>(args.getU("retries", 0));
    opts.retryBackoffMs = args.getD("retry-backoff-ms", 50.0);
    if (opts.resume && !opts.store)
        die("--resume 1 needs --store <dir> (nothing to replay)");
    opts.exp.checkpointEveryCycles =
        args.getU("checkpoint-every", 0);
    if (opts.exp.checkpointEveryCycles > 0) {
        if (!opts.store)
            die("--checkpoint-every needs --store <dir> "
                "(mid-run checkpoints live in the store directory)");
        opts.checkpointDir = store->dir();
        installPreemptHandler();
        opts.exp.preempt = &g_preempt;
    }

    const core::SweepReport report = core::runSweep(cells, opts);
    const Status printed =
        printSweepReport(report, args.get("csv"));
    if (!printed.ok())
        dieOn(printed);
    if (report.preempted()) {
        std::printf("preempted: mid-run checkpoints journaled in "
                    "%s; rerun with --resume 1 to continue\n",
                    store->dir().c_str());
        return kExitPreempted;
    }
    const std::string report_path = args.get("report-json");
    if (!report_path.empty()) {
        const Status s =
            core::writeSweepReportJson(report, report_path);
        if (!s.ok())
            dieOn(s);
        std::printf("report: %s\n", report_path.c_str());
    }
    // Per-cell failures are data, not a process failure: a sweep
    // that completes exits 0 so batch drivers keep their results.
    return 0;
}

/** Table IV annotation: the enum name when a free-form design
 *  coincides with a paper configuration, else "". */
std::string
tableIvNameCpu(uint64_t hash)
{
    for (int i = 0; i < core::kNumCpuConfigs; ++i) {
        const auto cfg = static_cast<core::CpuConfig>(i);
        if (core::designHash(core::cpuHybridFromConfig(cfg)) == hash)
            return core::cpuConfigName(cfg);
    }
    return "";
}

std::string
tableIvNameGpu(uint64_t hash)
{
    for (int i = 0; i < core::kNumGpuConfigs; ++i) {
        const auto cfg = static_cast<core::GpuConfig>(i);
        if (core::designHash(core::gpuHybridFromConfig(cfg)) == hash)
            return core::gpuConfigName(cfg);
    }
    return "";
}

int
cmdDse(const Args &args)
{
    const std::string space = args.get("space", "cpu");
    if (space != "cpu" && space != "gpu")
        die("--space must be cpu or gpu, got '%s'", space.c_str());

    core::DseOptions opts;
    opts.exp.scale = args.getD("scale", 0.05);
    opts.exp.freqGhz = args.getD("freq", 2.0);
    opts.exp.seed = args.getU("seed", 1);
    opts.exp.noSkip = args.getU("no-skip", 0) != 0;
    opts.jobs = static_cast<unsigned>(args.getU("jobs", 1));
    opts.areaBudgetMm2 = args.getD("budget-mm2", 0.0);
    const auto objective =
        core::dseObjectiveFromName(args.get("objective", "ed2"));
    if (!objective.ok())
        dieOn(objective.status());
    opts.objective = objective.value();

    const std::string strategy =
        args.get("strategy", "exhaustive");
    if (strategy != "exhaustive" && strategy != "greedy")
        die("--strategy must be exhaustive or greedy, got '%s'",
            strategy.c_str());
    const uint64_t repeat = std::max<uint64_t>(
        args.getU("repeat", 1), 1);

    std::optional<core::ResultStore> store = openStoreArg(args);
    opts.store = store ? &*store : nullptr;

    ThreadPool pool(opts.jobs);
    core::DseCache cache;
    std::vector<core::DsePoint> points;
    uint64_t prev_hits = 0, prev_misses = 0;

    for (uint64_t pass = 1; pass <= repeat; ++pass) {
        if (space == "cpu") {
            const auto app =
                workload::findCpuApp(args.get("app", "fft"));
            if (!app.ok())
                dieOn(app.status());
            if (strategy == "greedy") {
                points = core::greedyCpuSearch(*app.value(), opts,
                                               pool, cache);
            } else {
                points = core::evaluateCpuDesigns(
                    core::enumerateCpuDesigns(), *app.value(), opts,
                    pool, cache);
            }
        } else {
            if (strategy == "greedy")
                die("--strategy greedy explores the CPU space; "
                    "the 17-design GPU space is exhaustive-only");
            const auto kernel = workload::findGpuKernel(
                args.get("kernel", "matrixmul"));
            if (!kernel.ok())
                dieOn(kernel.status());
            points = core::evaluateGpuDesigns(
                core::enumerateGpuDesigns(), *kernel.value(), opts,
                pool, cache);
        }
        const uint64_t hits = cache.hits() - prev_hits;
        const uint64_t misses = cache.misses() - prev_misses;
        prev_hits = cache.hits();
        prev_misses = cache.misses();
        std::printf("pass %llu/%llu: %zu designs evaluated "
                    "(%llu simulated, %llu cache hits)\n",
                    static_cast<unsigned long long>(pass),
                    static_cast<unsigned long long>(repeat),
                    points.size(),
                    static_cast<unsigned long long>(misses),
                    static_cast<unsigned long long>(hits));
    }
    if (points.empty())
        die("no designs survived synthesis and the area budget");

    const std::vector<size_t> front =
        core::paretoFront(points, opts.objective);

    TablePrinter t(
        "dse " + space + " Pareto front over (time, energy, area), "
        "best " + std::string(dseObjectiveName(opts.objective)) +
        " first (" + std::to_string(points.size()) + " designs "
        "explored)",
        {"design", space == "cpu" ? "cores" : "CUs", "time (ms)",
         "energy (mJ)", "ED^2 (J s^2)", "area (mm^2)", "Table IV"});
    for (size_t idx : front) {
        const core::DsePoint &p = points[idx];
        char ed2[32];
        std::snprintf(ed2, sizeof(ed2), "%.3e", p.ed2());
        t.addRow({p.name, std::to_string(p.cores),
                  formatDouble(p.seconds * 1e3, 4),
                  formatDouble(p.energyJ * 1e3, 4), ed2,
                  formatDouble(p.areaMm2, 2),
                  space == "cpu" ? tableIvNameCpu(p.hash)
                                 : tableIvNameGpu(p.hash)});
    }
    t.print();

    const core::DsePoint &best = points[front.front()];
    std::printf("\nbest %s: %s", dseObjectiveName(opts.objective),
                best.name.c_str());
    const std::string best_iv = space == "cpu"
        ? tableIvNameCpu(best.hash) : tableIvNameGpu(best.hash);
    if (!best_iv.empty())
        std::printf(" (= Table IV %s)", best_iv.c_str());
    std::printf("\ncache: %llu hits, %llu misses across %llu "
                "pass(es)\n",
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(repeat));
    if (store) {
        const core::ResultStore::Counters sc = store->counters();
        std::printf("store: %llu hits, %llu misses, %llu writes, "
                    "%llu quarantined\n",
                    static_cast<unsigned long long>(sc.hits),
                    static_cast<unsigned long long>(sc.misses),
                    static_cast<unsigned long long>(sc.puts),
                    static_cast<unsigned long long>(sc.quarantined));
    }

    const std::string report_path = args.get("report-json");
    if (!report_path.empty()) {
        const std::string workload = space == "cpu"
            ? args.get("app", "fft")
            : args.get("kernel", "matrixmul");
        const Status s = core::writeDseReportJson(
            points, workload, opts.objective, report_path);
        if (!s.ok())
            dieOn(s);
        std::printf("report: %s\n", report_path.c_str());
    }

    const std::string csv = args.get("csv");
    if (!csv.empty() && !t.writeCsv(csv))
        die("cannot write '%s'", csv.c_str());
    return 0;
}

/** Self-pipe fd of the running serve daemon; written once before the
 *  handlers are installed, read by the (async-signal-safe) handler. */
volatile sig_atomic_t g_serve_drain_fd = -1;

extern "C" void
onServeDrainSignal(int)
{
    // Also raise the preemption flag: with --checkpoint-every, the
    // in-flight cell drains to a checkpoint instead of running to
    // completion (children inherit this handler, so a process-group
    // signal reaches forked cells too).
    g_preempt = 1;
    if (g_serve_drain_fd >= 0) {
        const char byte = 'q';
        [[maybe_unused]] const ssize_t n =
            ::write(g_serve_drain_fd, &byte, 1);
    }
}

int
cmdServe(const Args &args)
{
    core::ServeOptions opts;
    opts.socketPath = args.get("socket");
    if (opts.socketPath.empty())
        die("serve needs --socket <path>");
    opts.storeDir = args.get("store");
    opts.jobs = static_cast<unsigned>(args.getU("jobs", 1));
    opts.wallLimitMs = args.getD("timeout-ms", 0.0);
    opts.watchdogCycles = args.getU("watchdog-cycles", 0);
    opts.maxRetries =
        static_cast<uint32_t>(args.getU("retries", 1));
    opts.retryBackoffMs = args.getD("retry-backoff-ms", 50.0);
    opts.requestTimeoutMs =
        args.getD("request-timeout-ms", 10000.0);
    opts.verbose = args.getU("verbose", 1) != 0;
    opts.checkpointEveryCycles = args.getU("checkpoint-every", 0);
    if (opts.checkpointEveryCycles > 0 && opts.storeDir.empty())
        die("--checkpoint-every needs --store <dir> "
            "(mid-run checkpoints live in the store directory)");
    opts.preempt = &g_preempt;

    core::BatchServer server(opts);
    if (Status s = server.start(); !s.ok())
        dieOn(s);

    g_serve_drain_fd = server.drainWakeupFd();
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onServeDrainSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::printf("serving on %s%s%s (SIGTERM drains gracefully)\n",
                opts.socketPath.c_str(),
                opts.storeDir.empty() ? "" : ", store ",
                opts.storeDir.c_str());
    std::fflush(stdout);

    const Status served = server.serve();
    if (!served.ok())
        dieOn(served);

    const core::ServerCounters c = server.counters();
    std::printf("drained: %llu jobs completed, %llu rejected "
                "(%llu cells ok, %llu failed, %llu timed out, "
                "%llu retries)\n",
                static_cast<unsigned long long>(c.jobsCompleted),
                static_cast<unsigned long long>(c.jobsRejected),
                static_cast<unsigned long long>(c.cellsOk),
                static_cast<unsigned long long>(c.cellsFailed),
                static_cast<unsigned long long>(c.cellsTimedOut),
                static_cast<unsigned long long>(c.retries));

    const std::string report_path = args.get("report-json");
    if (!report_path.empty()) {
        const Status s =
            server.buildReport().writeJson(report_path);
        if (!s.ok())
            dieOn(s);
        std::printf("report: %s\n", report_path.c_str());
    }
    return 0;
}

int
cmdStore(int argc, char **argv)
{
    if (argc < 3)
        die("store needs a subcommand: fsck or gc");
    const std::string sub = argv[2];
    if (sub != "fsck" && sub != "gc")
        die("unknown store subcommand '%s' (expected fsck or gc)",
            sub.c_str());
    const Args args(argc, argv, 3);
    const std::string dir = args.get("dir");
    if (dir.empty())
        die("store %s needs --dir <store directory>", sub.c_str());

    Result<core::StoreFsckReport> rep = core::fsckStore(
        dir, workload::kTraceVersion, /*prune=*/sub == "gc");
    if (!rep.ok())
        dieOn(rep.status());
    const core::StoreFsckReport &r = rep.value();
    for (const std::string &note : r.notes)
        std::printf("%s\n", note.c_str());
    std::printf("store %s %s: %llu entries ok, %llu corrupt "
                "(quarantined), %llu quarantined files, "
                "%llu orphan temps, %llu checkpoints "
                "(%llu verified, %llu corrupt, left in place), "
                "%llu pruned\n",
                sub.c_str(), dir.c_str(),
                static_cast<unsigned long long>(r.okEntries),
                static_cast<unsigned long long>(r.corruptEntries),
                static_cast<unsigned long long>(r.quarantined),
                static_cast<unsigned long long>(r.orphanTemps),
                static_cast<unsigned long long>(r.checkpoints),
                static_cast<unsigned long long>(r.okCheckpoints),
                static_cast<unsigned long long>(r.corruptCheckpoints),
                static_cast<unsigned long long>(r.pruned));
    // Nonzero while problem files remain on disk (fsck reports, gc
    // removes; corrupt checkpoints are report-only and stay until
    // their owning run quarantines or replaces them), so cron-style
    // health checks can alert on fsck.
    const uint64_t remaining =
        r.quarantined + r.orphanTemps - r.pruned +
        r.corruptCheckpoints;
    return remaining > 0 ? 1 : 0;
}

int
cmdSubmit(const Args &args)
{
    const std::string socket_path = args.get("socket");
    if (socket_path.empty())
        die("submit needs --socket <path>");
    const std::string request = args.get("request");
    if (request.empty())
        die("submit needs --request '<flat json job>'");

    Result<std::string> response = core::submitJob(
        socket_path, request, args.getD("timeout-ms", 60000.0));
    if (!response.ok())
        dieOn(response.status());
    std::fputs(response.value().c_str(), stdout);
    // Exit 2 when the daemon answered with an error document so
    // scripts can branch without parsing JSON.
    const bool ok =
        response.value().find("\"ok\":true") != std::string::npos;
    return ok ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: hetsim_cli "
                     "{list|run|gpu|record|replay|sweep|dse|"
                     "serve|submit|store} [--opt value]...\n"
                     "see the file header for details\n");
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "store")
        return cmdStore(argc, argv);
    const Args args(argc, argv, 2);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "gpu")
        return cmdGpu(args);
    if (cmd == "record")
        return cmdRecord(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "dse")
        return cmdDse(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "submit")
        return cmdSubmit(args);
    die("unknown command '%s'", cmd.c_str());
}
