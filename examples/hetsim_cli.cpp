/**
 * @file
 * hetsim_cli — the command-line front end to the library.
 *
 *   hetsim_cli list
 *       Print every configuration, application, and GPU kernel.
 *   hetsim_cli run --config AdvHet --app fft [--scale S] [--freq F]
 *                  [--cores N] [--seed K] [--csv out.csv]
 *       Simulate one CPU experiment and print its metrics.
 *   hetsim_cli gpu --config AdvHet --kernel matrixmul [--scale S]
 *       Simulate one GPU experiment.
 *   hetsim_cli record --app fft [--thread T] [--threads N]
 *                     [--scale S] [--max M] --out trace.bin
 *       Record a synthetic trace to a binary file.
 *   hetsim_cli replay --trace trace.bin [--config BaseCMOS]
 *       Replay a recorded trace through a single core.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "cpu/multicore.hh"
#include "workload/cpu_trace_gen.hh"
#include "workload/trace_file.hh"

using namespace hetsim;

namespace
{

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i + 1 < argc; i += 2) {
            if (std::strncmp(argv[i], "--", 2) != 0)
                fatal("expected --option, got '%s'", argv[i]);
            kv_[argv[i] + 2] = argv[i + 1];
        }
    }

    std::string
    get(const std::string &key, const std::string &dflt = "") const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? dflt : it->second;
    }

    double
    getD(const std::string &key, double dflt) const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? dflt : std::atof(it->second.c_str());
    }

    uint64_t
    getU(const std::string &key, uint64_t dflt) const
    {
        auto it = kv_.find(key);
        return it == kv_.end()
            ? dflt
            : std::strtoull(it->second.c_str(), nullptr, 10);
    }

  private:
    std::map<std::string, std::string> kv_;
};

core::CpuConfig
cpuConfigByName(const std::string &name)
{
    for (int i = 0; i < core::kNumCpuConfigs; ++i) {
        const auto c = static_cast<core::CpuConfig>(i);
        if (name == core::cpuConfigName(c))
            return c;
    }
    fatal("unknown CPU config '%s' (try 'hetsim_cli list')",
          name.c_str());
}

core::GpuConfig
gpuConfigByName(const std::string &name)
{
    for (int i = 0; i < core::kNumGpuConfigs; ++i) {
        const auto c = static_cast<core::GpuConfig>(i);
        if (name == core::gpuConfigName(c))
            return c;
    }
    fatal("unknown GPU config '%s' (try 'hetsim_cli list')",
          name.c_str());
}

int
cmdList()
{
    std::printf("CPU configurations:\n ");
    for (int i = 0; i < core::kNumCpuConfigs; ++i)
        std::printf(" %s", core::cpuConfigName(
                               static_cast<core::CpuConfig>(i)));
    std::printf("\nGPU configurations:\n ");
    for (int i = 0; i < core::kNumGpuConfigs; ++i)
        std::printf(" %s", core::gpuConfigName(
                               static_cast<core::GpuConfig>(i)));
    std::printf("\nCPU applications:\n ");
    for (const auto &app : workload::cpuApps())
        std::printf(" %s", app.name);
    std::printf("\nGPU kernels:\n ");
    for (const auto &k : workload::gpuKernels())
        std::printf(" %s", k.name);
    std::printf("\n");
    return 0;
}

int
cmdRun(const Args &args)
{
    const auto cfg = cpuConfigByName(args.get("config", "BaseCMOS"));
    const auto &app = workload::cpuApp(args.get("app", "fft"));
    core::ExperimentOptions opts;
    opts.scale = args.getD("scale", 1.0);
    opts.freqGhz = args.getD("freq", 2.0);
    opts.seed = args.getU("seed", 1);
    opts.coresOverride =
        static_cast<uint32_t>(args.getU("cores", 0));

    const core::CpuOutcome out =
        core::runCpuExperiment(cfg, app, opts);
    TablePrinter t("hetsim run: " + out.config + " / " + out.app,
                   {"metric", "value"});
    t.addRow({"cycles", std::to_string(out.cycles)});
    t.addRow({"committed ops", std::to_string(out.committedOps)});
    t.addRow({"time (ms)",
              formatDouble(out.metrics.seconds * 1e3, 4)});
    t.addRow({"energy (mJ)",
              formatDouble(out.metrics.energyJ * 1e3, 4)});
    t.addRow({"power (W)", formatDouble(out.metrics.powerW(), 3)});
    char ed2[32];
    std::snprintf(ed2, sizeof(ed2), "%.3e", out.metrics.ed2Js2());
    t.addRow({"ED^2 (J s^2)", ed2});
    t.print();
    const std::string csv = args.get("csv");
    if (!csv.empty() && !t.writeCsv(csv))
        fatal("cannot write '%s'", csv.c_str());
    return 0;
}

int
cmdGpu(const Args &args)
{
    const auto cfg = gpuConfigByName(args.get("config", "BaseCMOS"));
    const auto &kernel =
        workload::gpuKernel(args.get("kernel", "matrixmul"));
    core::ExperimentOptions opts;
    opts.scale = args.getD("scale", 1.0);
    opts.seed = args.getU("seed", 1);

    const core::GpuOutcome out =
        core::runGpuExperiment(cfg, kernel, opts);
    TablePrinter t("hetsim gpu: " + out.config + " / " + out.kernel,
                   {"metric", "value"});
    t.addRow({"cycles", std::to_string(out.cycles)});
    t.addRow({"issued ops", std::to_string(out.issuedOps)});
    t.addRow({"time (ms)",
              formatDouble(out.metrics.seconds * 1e3, 4)});
    t.addRow({"energy (mJ)",
              formatDouble(out.metrics.energyJ * 1e3, 4)});
    t.addRow({"power (W)", formatDouble(out.metrics.powerW(), 3)});
    t.print();
    return 0;
}

int
cmdRecord(const Args &args)
{
    const auto &app = workload::cpuApp(args.get("app", "fft"));
    const std::string out_path = args.get("out");
    if (out_path.empty())
        fatal("record needs --out <file>");
    const uint32_t threads =
        static_cast<uint32_t>(args.getU("threads", 4));
    const uint32_t thread =
        static_cast<uint32_t>(args.getU("thread", 0));
    workload::SyntheticCpuTrace src(app, thread, threads,
                                    args.getU("seed", 1),
                                    args.getD("scale", 1.0));
    const uint64_t n = workload::recordTrace(
        src, out_path, args.getU("max", ~0ull));
    std::printf("recorded %llu ops of %s (thread %u/%u) to %s\n",
                static_cast<unsigned long long>(n), app.name, thread,
                threads, out_path.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    const std::string path = args.get("trace");
    if (path.empty())
        fatal("replay needs --trace <file>");
    const auto cfg = cpuConfigByName(args.get("config", "BaseCMOS"));
    const core::CpuConfigBundle bundle = core::makeCpuConfig(cfg);

    workload::FileTrace trace(path);
    cpu::MulticoreParams sim = bundle.sim;
    sim.mem.numCores = 1;
    cpu::Multicore mc(sim, {&trace});
    const cpu::MulticoreResult run = mc.run();
    std::printf("replayed %llu ops from %s on one %s core: "
                "%llu cycles (%.4f ms, IPC %.2f)\n",
                static_cast<unsigned long long>(run.committedOps),
                path.c_str(), core::cpuConfigName(cfg),
                static_cast<unsigned long long>(run.cycles),
                run.seconds * 1e3,
                static_cast<double>(run.committedOps) / run.cycles);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: hetsim_cli "
                     "{list|run|gpu|record|replay} [--opt value]...\n"
                     "see the file header for details\n");
        return 1;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "gpu")
        return cmdGpu(args);
    if (cmd == "record")
        return cmdRecord(args);
    if (cmd == "replay")
        return cmdReplay(args);
    fatal("unknown command '%s'", cmd.c_str());
}
