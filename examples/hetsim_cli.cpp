/**
 * @file
 * hetsim_cli — the command-line front end to the library.
 *
 *   hetsim_cli list
 *       Print every configuration, application, and GPU kernel.
 *   hetsim_cli run --config AdvHet --app fft [--scale S] [--freq F]
 *                  [--cores N] [--seed K] [--no-skip 1]
 *                  [--csv out.csv] [--report-json report.json]
 *                  [--trace-out t.json] [--trace-capacity N]
 *       Simulate one CPU experiment and print its metrics.
 *       --no-skip 1 disables event-horizon cycle skipping (the
 *       slower reference path; reports are byte-identical either
 *       way — run/gpu/sweep/dse all accept it).
 *       --report-json writes the machine-readable RunReport (every
 *       stat counter and distribution, per-unit energy, config
 *       identity); two identical runs produce byte-identical files.
 *       --trace-out records the last N (default 65536) pipeline and
 *       cache events into a chrome://tracing JSON.
 *   hetsim_cli gpu --config AdvHet --kernel matrixmul [--scale S]
 *                  [--report-json report.json] [--trace-out t.json]
 *       Simulate one GPU experiment (trace records wavefront issue).
 *   hetsim_cli record --app fft [--thread T] [--threads N]
 *                     [--scale S] [--max M] --out trace.bin
 *       Record a synthetic trace to a binary file.
 *   hetsim_cli replay --trace trace.bin [--config BaseCMOS]
 *       Replay a recorded trace through a single core.
 *   hetsim_cli sweep [--configs all|A,B] [--workloads w1,w2]
 *                    [--scale S] [--seed K] [--freq F]
 *                    [--timeout-ms T] [--watchdog-cycles N]
 *                    [--no-isolate 1] [--csv out.csv]
 *       Run a batch (config x workload) sweep; each cell executes in
 *       an isolated child process with watchdogs, so corrupt traces,
 *       crashes, and runaway cells are recorded per cell while the
 *       rest of the sweep completes. Workload specs: "fft",
 *       "app:fft@scale=2", "trace:file.bin", "kernel:dct" (kernel
 *       cells use GPU configs named via --gpu-configs).
 *       --report-json writes the deterministic per-cell JSON report.
 *       Exits 0 as long as the sweep itself ran; per-cell failures
 *       are reported in the summary, not via the exit code.
 *   hetsim_cli dse [--space cpu|gpu] [--app fft | --kernel matrixmul]
 *                  [--objective ed2|energy|time]
 *                  [--strategy exhaustive|greedy] [--jobs N]
 *                  [--budget-mm2 X] [--scale S] [--seed K] [--freq F]
 *                  [--repeat R] [--csv out.csv]
 *       Explore the free-form hybrid-design space (per-unit
 *       CMOS/TFET/high-V_t choices beyond Table IV) on one workload,
 *       fanning cells out over --jobs threads with a memoization
 *       cache, and report the Pareto front over (time, energy, area).
 *       Output is identical for any --jobs value; --repeat R > 1
 *       re-runs the search to demonstrate the cache (every repeated
 *       cell is a hit, not a re-simulation). --report-json writes the
 *       evaluated points as JSON, byte-identical for any --jobs.
 *
 * The library reports input errors as Status values; this front end
 * is where they become messages and a nonzero process exit.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/status.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/dse.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "cpu/multicore.hh"
#include "workload/cpu_trace_gen.hh"
#include "workload/trace_file.hh"

using namespace hetsim;

namespace
{

/** CLI-layer fatal: print and exit(1). Library code returns Status
 *  instead; only the front end may terminate the process. */
[[noreturn]] void
die(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void
vdie(const char *fmt, va_list ap)
{
    std::fprintf(stderr, "error: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

[[noreturn]] void
die(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vdie(fmt, ap);
    va_end(ap);
    std::abort(); // Unreachable; vdie exits.
}

[[noreturn]] void
dieOn(const Status &status)
{
    die("%s", status.toString().c_str());
}

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i + 1 < argc; i += 2) {
            if (std::strncmp(argv[i], "--", 2) != 0)
                die("expected --option, got '%s'", argv[i]);
            kv_[argv[i] + 2] = argv[i + 1];
        }
    }

    std::string
    get(const std::string &key, const std::string &dflt = "") const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? dflt : it->second;
    }

    double
    getD(const std::string &key, double dflt) const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? dflt : std::atof(it->second.c_str());
    }

    uint64_t
    getU(const std::string &key, uint64_t dflt) const
    {
        auto it = kv_.find(key);
        return it == kv_.end()
            ? dflt
            : std::strtoull(it->second.c_str(), nullptr, 10);
    }

  private:
    std::map<std::string, std::string> kv_;
};

core::CpuConfig
cpuConfigByName(const std::string &name)
{
    Result<core::CpuConfig> r = core::cpuConfigFromName(name);
    if (!r.ok())
        dieOn(r.status());
    return r.value();
}

core::GpuConfig
gpuConfigByName(const std::string &name)
{
    Result<core::GpuConfig> r = core::gpuConfigFromName(name);
    if (!r.ok())
        dieOn(r.status());
    return r.value();
}

std::vector<std::string>
splitCsvList(const std::string &list)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > start)
            out.push_back(list.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

int
cmdList()
{
    std::printf("CPU configurations:\n ");
    for (int i = 0; i < core::kNumCpuConfigs; ++i)
        std::printf(" %s", core::cpuConfigName(
                               static_cast<core::CpuConfig>(i)));
    std::printf("\nGPU configurations:\n ");
    for (int i = 0; i < core::kNumGpuConfigs; ++i)
        std::printf(" %s", core::gpuConfigName(
                               static_cast<core::GpuConfig>(i)));
    std::printf("\nCPU applications:\n ");
    for (const auto &app : workload::cpuApps())
        std::printf(" %s", app.name);
    std::printf("\nGPU kernels:\n ");
    for (const auto &k : workload::gpuKernels())
        std::printf(" %s", k.name);
    std::printf("\n");
    return 0;
}

/** Write the --report-json / --trace-out artifacts of one run. */
void
writeRunArtifacts(const Args &args, obs::RunReport &report,
                  const obs::TraceBuffer &trace)
{
    const std::string report_path = args.get("report-json");
    if (!report_path.empty()) {
        const Status s = report.writeJson(report_path);
        if (!s.ok())
            dieOn(s);
        std::printf("report: %s\n", report_path.c_str());
    }
    const std::string trace_path = args.get("trace-out");
    if (!trace_path.empty()) {
        const Status s = obs::writeChromeTrace(trace, trace_path);
        if (!s.ok())
            dieOn(s);
        std::printf("trace: %s (%llu events kept, %llu dropped)\n",
                    trace_path.c_str(),
                    static_cast<unsigned long long>(trace.size()),
                    static_cast<unsigned long long>(trace.dropped()));
    }
}

int
cmdRun(const Args &args)
{
    const auto cfg = cpuConfigByName(args.get("config", "BaseCMOS"));
    const auto app = workload::findCpuApp(args.get("app", "fft"));
    if (!app.ok())
        dieOn(app.status());
    core::ExperimentOptions opts;
    opts.scale = args.getD("scale", 1.0);
    opts.freqGhz = args.getD("freq", 2.0);
    opts.seed = args.getU("seed", 1);
    opts.coresOverride =
        static_cast<uint32_t>(args.getU("cores", 0));
    opts.noSkip = args.getU("no-skip", 0) != 0;

    obs::RunReport report;
    obs::TraceBuffer trace(
        static_cast<size_t>(args.getU("trace-capacity", 65536)));
    const bool want_report = !args.get("report-json").empty();
    const bool want_trace = !args.get("trace-out").empty();

    const core::CpuOutcome out = core::runCpuExperiment(
        cfg, *app.value(), opts, want_report ? &report : nullptr,
        want_trace ? &trace : nullptr);
    report.designHash =
        core::designHash(core::cpuHybridFromConfig(cfg));
    TablePrinter t("hetsim run: " + out.config + " / " + out.app,
                   {"metric", "value"});
    t.addRow({"cycles", std::to_string(out.cycles)});
    t.addRow({"committed ops", std::to_string(out.committedOps)});
    t.addRow({"time (ms)",
              formatDouble(out.metrics.seconds * 1e3, 4)});
    t.addRow({"energy (mJ)",
              formatDouble(out.metrics.energyJ * 1e3, 4)});
    t.addRow({"power (W)", formatDouble(out.metrics.powerW(), 3)});
    char ed2[32];
    std::snprintf(ed2, sizeof(ed2), "%.3e", out.metrics.ed2Js2());
    t.addRow({"ED^2 (J s^2)", ed2});
    t.print();
    writeRunArtifacts(args, report, trace);
    const std::string csv = args.get("csv");
    if (!csv.empty() && !t.writeCsv(csv))
        die("cannot write '%s'", csv.c_str());
    return 0;
}

int
cmdGpu(const Args &args)
{
    const auto cfg = gpuConfigByName(args.get("config", "BaseCMOS"));
    const auto kernel =
        workload::findGpuKernel(args.get("kernel", "matrixmul"));
    if (!kernel.ok())
        dieOn(kernel.status());
    core::ExperimentOptions opts;
    opts.scale = args.getD("scale", 1.0);
    opts.seed = args.getU("seed", 1);
    opts.noSkip = args.getU("no-skip", 0) != 0;

    obs::RunReport report;
    obs::TraceBuffer trace(
        static_cast<size_t>(args.getU("trace-capacity", 65536)));
    const bool want_report = !args.get("report-json").empty();
    const bool want_trace = !args.get("trace-out").empty();

    const core::GpuOutcome out = core::runGpuExperiment(
        cfg, *kernel.value(), opts, want_report ? &report : nullptr,
        want_trace ? &trace : nullptr);
    report.designHash =
        core::designHash(core::gpuHybridFromConfig(cfg));
    TablePrinter t("hetsim gpu: " + out.config + " / " + out.kernel,
                   {"metric", "value"});
    t.addRow({"cycles", std::to_string(out.cycles)});
    t.addRow({"issued ops", std::to_string(out.issuedOps)});
    t.addRow({"time (ms)",
              formatDouble(out.metrics.seconds * 1e3, 4)});
    t.addRow({"energy (mJ)",
              formatDouble(out.metrics.energyJ * 1e3, 4)});
    t.addRow({"power (W)", formatDouble(out.metrics.powerW(), 3)});
    t.print();
    writeRunArtifacts(args, report, trace);
    return 0;
}

int
cmdRecord(const Args &args)
{
    const auto app = workload::findCpuApp(args.get("app", "fft"));
    if (!app.ok())
        dieOn(app.status());
    const std::string out_path = args.get("out");
    if (out_path.empty())
        die("record needs --out <file>");
    const uint32_t threads =
        static_cast<uint32_t>(args.getU("threads", 4));
    const uint32_t thread =
        static_cast<uint32_t>(args.getU("thread", 0));
    workload::SyntheticCpuTrace src(*app.value(), thread, threads,
                                    args.getU("seed", 1),
                                    args.getD("scale", 1.0));
    const Result<uint64_t> n = workload::recordTrace(
        src, out_path, args.getU("max", ~0ull));
    if (!n.ok())
        dieOn(n.status());
    std::printf("recorded %llu ops of %s (thread %u/%u) to %s\n",
                static_cast<unsigned long long>(n.value()),
                app.value()->name, thread, threads,
                out_path.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    const std::string path = args.get("trace");
    if (path.empty())
        die("replay needs --trace <file>");
    const auto cfg = cpuConfigByName(args.get("config", "BaseCMOS"));
    const core::CpuConfigBundle bundle = core::makeCpuConfig(cfg);

    auto trace = workload::FileTrace::open(path);
    if (!trace.ok())
        dieOn(trace.status());
    cpu::MulticoreParams sim = bundle.sim;
    sim.mem.numCores = 1;
    cpu::Multicore mc(sim, {trace.value().get()});
    const cpu::MulticoreResult run = mc.run();
    if (!trace.value()->status().ok())
        dieOn(trace.value()->status());
    std::printf("replayed %llu ops from %s on one %s core: "
                "%llu cycles (%.4f ms, IPC %.2f)\n",
                static_cast<unsigned long long>(run.committedOps),
                path.c_str(), core::cpuConfigName(cfg),
                static_cast<unsigned long long>(run.cycles),
                run.seconds * 1e3,
                static_cast<double>(run.committedOps) / run.cycles);
    return 0;
}

int
cmdSweep(const Args &args)
{
    // Configurations: every CPU config by default.
    std::vector<core::CpuConfig> cfgs;
    const std::string cfg_list = args.get("configs", "all");
    if (cfg_list == "all") {
        for (int i = 0; i < core::kNumCpuConfigs; ++i)
            cfgs.push_back(static_cast<core::CpuConfig>(i));
    } else {
        for (const std::string &name : splitCsvList(cfg_list))
            cfgs.push_back(cpuConfigByName(name));
    }

    // Workload specs crossed with the CPU configs.
    std::vector<std::string> specs =
        splitCsvList(args.get("workloads", ""));
    std::vector<core::SweepCell> cells;
    if (!specs.empty()) {
        auto crossed = core::crossCpuCells(cfgs, specs);
        if (!crossed.ok())
            dieOn(crossed.status());
        cells = std::move(crossed.value());
    }

    // GPU cells: every named GPU config x every kernel spec.
    const auto gpu_cfg_list =
        splitCsvList(args.get("gpu-configs", ""));
    const auto kernel_list = splitCsvList(args.get("kernels", ""));
    for (const std::string &name : gpu_cfg_list) {
        const core::GpuConfig gcfg = gpuConfigByName(name);
        for (const std::string &k : kernel_list)
            cells.push_back(core::gpuKernelCell(gcfg, k));
    }

    // Individually added cells: "Config/spec" entries.
    for (const std::string &entry :
         splitCsvList(args.get("cells", ""))) {
        const size_t slash = entry.find('/');
        if (slash == std::string::npos)
            die("bad --cells entry '%s' (expected Config/workload)",
                entry.c_str());
        auto cell =
            core::parseWorkloadSpec(entry.substr(slash + 1));
        if (!cell.ok())
            dieOn(cell.status());
        if (cell.value().kind == core::SweepCell::Kind::GpuKernel)
            cell.value().gpuCfg =
                gpuConfigByName(entry.substr(0, slash));
        else
            cell.value().cpuCfg =
                cpuConfigByName(entry.substr(0, slash));
        cells.push_back(std::move(cell.value()));
    }

    if (cells.empty())
        die("sweep needs --workloads, --kernels, or --cells");

    core::SweepOptions opts;
    opts.exp.scale = args.getD("scale", 1.0);
    opts.exp.freqGhz = args.getD("freq", 2.0);
    opts.exp.seed = args.getU("seed", 1);
    opts.exp.watchdogCycles = args.getU("watchdog-cycles", 0);
    opts.exp.noSkip = args.getU("no-skip", 0) != 0;
    opts.wallLimitMs = args.getD("timeout-ms", 0.0);
    opts.isolate = args.getU("no-isolate", 0) == 0;
    opts.verbose = true;

    const core::SweepReport report = core::runSweep(cells, opts);
    const Status printed =
        printSweepReport(report, args.get("csv"));
    if (!printed.ok())
        dieOn(printed);
    const std::string report_path = args.get("report-json");
    if (!report_path.empty()) {
        const Status s =
            core::writeSweepReportJson(report, report_path);
        if (!s.ok())
            dieOn(s);
        std::printf("report: %s\n", report_path.c_str());
    }
    // Per-cell failures are data, not a process failure: a sweep
    // that completes exits 0 so batch drivers keep their results.
    return 0;
}

/** Table IV annotation: the enum name when a free-form design
 *  coincides with a paper configuration, else "". */
std::string
tableIvNameCpu(uint64_t hash)
{
    for (int i = 0; i < core::kNumCpuConfigs; ++i) {
        const auto cfg = static_cast<core::CpuConfig>(i);
        if (core::designHash(core::cpuHybridFromConfig(cfg)) == hash)
            return core::cpuConfigName(cfg);
    }
    return "";
}

std::string
tableIvNameGpu(uint64_t hash)
{
    for (int i = 0; i < core::kNumGpuConfigs; ++i) {
        const auto cfg = static_cast<core::GpuConfig>(i);
        if (core::designHash(core::gpuHybridFromConfig(cfg)) == hash)
            return core::gpuConfigName(cfg);
    }
    return "";
}

int
cmdDse(const Args &args)
{
    const std::string space = args.get("space", "cpu");
    if (space != "cpu" && space != "gpu")
        die("--space must be cpu or gpu, got '%s'", space.c_str());

    core::DseOptions opts;
    opts.exp.scale = args.getD("scale", 0.05);
    opts.exp.freqGhz = args.getD("freq", 2.0);
    opts.exp.seed = args.getU("seed", 1);
    opts.exp.noSkip = args.getU("no-skip", 0) != 0;
    opts.jobs = static_cast<unsigned>(args.getU("jobs", 1));
    opts.areaBudgetMm2 = args.getD("budget-mm2", 0.0);
    const auto objective =
        core::dseObjectiveFromName(args.get("objective", "ed2"));
    if (!objective.ok())
        dieOn(objective.status());
    opts.objective = objective.value();

    const std::string strategy =
        args.get("strategy", "exhaustive");
    if (strategy != "exhaustive" && strategy != "greedy")
        die("--strategy must be exhaustive or greedy, got '%s'",
            strategy.c_str());
    const uint64_t repeat = std::max<uint64_t>(
        args.getU("repeat", 1), 1);

    ThreadPool pool(opts.jobs);
    core::DseCache cache;
    std::vector<core::DsePoint> points;
    uint64_t prev_hits = 0, prev_misses = 0;

    for (uint64_t pass = 1; pass <= repeat; ++pass) {
        if (space == "cpu") {
            const auto app =
                workload::findCpuApp(args.get("app", "fft"));
            if (!app.ok())
                dieOn(app.status());
            if (strategy == "greedy") {
                points = core::greedyCpuSearch(*app.value(), opts,
                                               pool, cache);
            } else {
                points = core::evaluateCpuDesigns(
                    core::enumerateCpuDesigns(), *app.value(), opts,
                    pool, cache);
            }
        } else {
            if (strategy == "greedy")
                die("--strategy greedy explores the CPU space; "
                    "the 17-design GPU space is exhaustive-only");
            const auto kernel = workload::findGpuKernel(
                args.get("kernel", "matrixmul"));
            if (!kernel.ok())
                dieOn(kernel.status());
            points = core::evaluateGpuDesigns(
                core::enumerateGpuDesigns(), *kernel.value(), opts,
                pool, cache);
        }
        const uint64_t hits = cache.hits() - prev_hits;
        const uint64_t misses = cache.misses() - prev_misses;
        prev_hits = cache.hits();
        prev_misses = cache.misses();
        std::printf("pass %llu/%llu: %zu designs evaluated "
                    "(%llu simulated, %llu cache hits)\n",
                    static_cast<unsigned long long>(pass),
                    static_cast<unsigned long long>(repeat),
                    points.size(),
                    static_cast<unsigned long long>(misses),
                    static_cast<unsigned long long>(hits));
    }
    if (points.empty())
        die("no designs survived synthesis and the area budget");

    const std::vector<size_t> front =
        core::paretoFront(points, opts.objective);

    TablePrinter t(
        "dse " + space + " Pareto front over (time, energy, area), "
        "best " + std::string(dseObjectiveName(opts.objective)) +
        " first (" + std::to_string(points.size()) + " designs "
        "explored)",
        {"design", space == "cpu" ? "cores" : "CUs", "time (ms)",
         "energy (mJ)", "ED^2 (J s^2)", "area (mm^2)", "Table IV"});
    for (size_t idx : front) {
        const core::DsePoint &p = points[idx];
        char ed2[32];
        std::snprintf(ed2, sizeof(ed2), "%.3e", p.ed2());
        t.addRow({p.name, std::to_string(p.cores),
                  formatDouble(p.seconds * 1e3, 4),
                  formatDouble(p.energyJ * 1e3, 4), ed2,
                  formatDouble(p.areaMm2, 2),
                  space == "cpu" ? tableIvNameCpu(p.hash)
                                 : tableIvNameGpu(p.hash)});
    }
    t.print();

    const core::DsePoint &best = points[front.front()];
    std::printf("\nbest %s: %s", dseObjectiveName(opts.objective),
                best.name.c_str());
    const std::string best_iv = space == "cpu"
        ? tableIvNameCpu(best.hash) : tableIvNameGpu(best.hash);
    if (!best_iv.empty())
        std::printf(" (= Table IV %s)", best_iv.c_str());
    std::printf("\ncache: %llu hits, %llu misses across %llu "
                "pass(es)\n",
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(repeat));

    const std::string report_path = args.get("report-json");
    if (!report_path.empty()) {
        const std::string workload = space == "cpu"
            ? args.get("app", "fft")
            : args.get("kernel", "matrixmul");
        const Status s = core::writeDseReportJson(
            points, workload, opts.objective, report_path);
        if (!s.ok())
            dieOn(s);
        std::printf("report: %s\n", report_path.c_str());
    }

    const std::string csv = args.get("csv");
    if (!csv.empty() && !t.writeCsv(csv))
        die("cannot write '%s'", csv.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: hetsim_cli "
                     "{list|run|gpu|record|replay|sweep|dse} "
                     "[--opt value]...\n"
                     "see the file header for details\n");
        return 1;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "gpu")
        return cmdGpu(args);
    if (cmd == "record")
        return cmdRecord(args);
    if (cmd == "replay")
        return cmdReplay(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "dse")
        return cmdDse(args);
    die("unknown command '%s'", cmd.c_str());
}
